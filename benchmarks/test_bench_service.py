"""Serving-layer benchmarks: batched wavefront reuse and closed-loop load.

Two claims are measured:

* **Batching saves work.**  Co-located concurrent requests grouped by
  the :class:`~repro.service.batching.BatchPlanner` and executed
  source-major through the shared :class:`DistanceEngine` settle
  measurably fewer nodes than the same requests run one at a time from
  cold — the cross-request wavefront reuse the serving layer exists
  for.  Asserted, not just reported: batched must be ≥ 20 % cheaper.
* **The service keeps up under closed-loop load.**  N client threads
  each issuing a stream of blocking queries: everything completes,
  nothing is shed, every answer matches a direct single-threaded run.

EDC is the measured algorithm: its per-candidate distance probes go
through the engine's pooled A* expanders, so a warm pool converts
straight into skipped settles (CE drives its own unpooled network
expansion, which the engine counters deliberately do not track).
"""

from __future__ import annotations

import threading
import time

from repro.core import Workspace
from repro.datasets import build_preset, extract_objects
from repro.service import (
    BatchPlanner,
    QueryService,
    SERVICE_ALGORITHMS,
    ServiceRequest,
    execute_plan,
)

from conftest import BENCH_SCALE


def build_service_workspace() -> Workspace:
    """A fresh, identically-seeded workspace per measurement arm.

    ``astar`` backend: EDC's probes then share the engine's default
    expander pool with the planner's warm phase.
    """
    network = build_preset("AU", scale=BENCH_SCALE)
    objects = extract_objects(network, omega=0.50, seed=1)
    return Workspace.build(network, objects, distance_backend="astar")


def overlapping_requests(network, algorithm="EDC"):
    """Three co-located requests; adjacent pairs share two query points."""
    ids = sorted(network.node_ids())
    a, b, c, d, e = (ids[i] for i in (10, 11, 30, 31, 50))
    node_sets = [(a, b, c), (b, c, d), (c, d, e)]
    return [
        ServiceRequest(
            i, algorithm, [network.location_at_node(n) for n in nodes]
        )
        for i, nodes in enumerate(node_sets, start=1)
    ]


class TestBatchedNodeSavings:
    def test_batched_settles_at_least_20pct_fewer_nodes(self, benchmark):
        # Serial arm: each request runs alone from fully cold state.
        serial_ws = build_service_workspace()
        requests = overlapping_requests(serial_ws.network)
        serial_nodes = 0
        serial_results = {}
        for request in requests:
            serial_ws.reset_io(cold=True)
            before = serial_ws.engine.nodes_settled()
            algorithm = SERVICE_ALGORITHMS[request.algorithm]()
            serial_results[request.request_id] = algorithm.run(
                serial_ws, request.queries
            )
            serial_nodes += serial_ws.engine.nodes_settled() - before

        # Batched arm: one plan over an identically-built workspace.
        batch_ws = build_service_workspace()
        batch_requests = overlapping_requests(batch_ws.network)
        plans = BatchPlanner().plan(batch_requests)
        assert len(plans) == 1, "co-located requests must share one plan"

        def run_batched():
            batch_ws.reset_io(cold=True)
            before = batch_ws.engine.nodes_settled()
            outcomes = execute_plan(batch_ws, plans[0], SERVICE_ALGORITHMS)
            return outcomes, batch_ws.engine.nodes_settled() - before

        outcomes, batch_nodes = benchmark.pedantic(
            run_batched, rounds=1, iterations=1
        )

        for request_id, serial_result in serial_results.items():
            assert outcomes[request_id].same_answer(serial_result)
        assert serial_nodes > 0
        saving = 1.0 - batch_nodes / serial_nodes
        benchmark.extra_info["serial_nodes"] = serial_nodes
        benchmark.extra_info["batch_nodes"] = batch_nodes
        benchmark.extra_info["node_saving"] = round(saving, 4)
        assert batch_nodes <= 0.8 * serial_nodes, (
            f"batched execution settled {batch_nodes} nodes vs "
            f"{serial_nodes} serial — saving {saving:.1%} < 20%"
        )


class TestClosedLoopLoad:
    CLIENTS = 4
    QUERIES_PER_CLIENT = 5

    def test_service_under_closed_loop_clients(self, benchmark):
        workspace = build_service_workspace()
        network = workspace.network
        ids = sorted(network.node_ids())
        # Each client cycles through overlapping query sets so the
        # batching window actually has co-located work to merge.
        query_sets = [
            [network.location_at_node(ids[i]) for i in indexes]
            for indexes in ((10, 11, 30), (11, 30, 31), (30, 31, 50))
        ]
        direct = {}
        for i, queries in enumerate(query_sets):
            direct[i] = SERVICE_ALGORITHMS["EDC"]().run(workspace, queries)

        def closed_loop():
            errors: list = []
            completed = [0]
            lock = threading.Lock()

            with QueryService(workspace, workers=4, max_batch=8) as service:

                def client(offset):
                    for i in range(self.QUERIES_PER_CLIENT):
                        which = (offset + i) % len(query_sets)
                        try:
                            result = service.query(
                                "EDC", query_sets[which], timeout_s=120
                            )
                            if not result.same_answer(direct[which]):
                                raise AssertionError(
                                    f"wrong answer for set {which}"
                                )
                            with lock:
                                completed[0] += 1
                        except Exception as exc:
                            errors.append(exc)

                threads = [
                    threading.Thread(target=client, args=(i,))
                    for i in range(self.CLIENTS)
                ]
                started = time.perf_counter()
                for thread in threads:
                    thread.start()
                for thread in threads:
                    thread.join()
                elapsed = time.perf_counter() - started
                stats = service.stats_dict()
            return errors, completed[0], elapsed, stats

        errors, completed, elapsed, stats = benchmark.pedantic(
            closed_loop, rounds=1, iterations=1
        )
        assert not errors, errors
        expected = self.CLIENTS * self.QUERIES_PER_CLIENT
        assert completed == expected
        assert stats["queue"]["shed"] == 0
        assert stats["requests"]["completed"] == expected
        benchmark.extra_info["throughput_qps"] = round(
            completed / elapsed, 2
        )
        benchmark.extra_info["p50_s"] = stats["latency_s"]["p50_s"]
        benchmark.extra_info["p95_s"] = stats["latency_s"]["p95_s"]
        benchmark.extra_info["deduped"] = stats["requests"]["deduped"]
        benchmark.extra_info["mean_batch_size"] = stats["batches"][
            "mean_batch_size"
        ]
        if stats["batches"]["executed"]:
            assert stats["batches"]["mean_batch_size"] >= 1.0
