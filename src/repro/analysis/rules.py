"""Rule registry and the per-module rule families.

Rule identity is stable and machine-readable: ``REPRO-<FAMILY><NN>``.
Families shipped here:

* ``REPRO-PAGE`` — page-accounting discipline (every network access
  flows through the page-charged store/expander path);
* ``REPRO-LOCK`` — lock discipline (guarded workspace mutation, no
  bare ``acquire()``, no blocking work inside a mutex);
* ``REPRO-TELE`` — telemetry vocabulary (span names, counter keys and
  metric families come from :mod:`repro.obs.names`).

The import-layering family (``REPRO-ARCH``) lives in
:mod:`repro.analysis.importgraph` and the lock-order family
(``REPRO-ORDER``) in :mod:`repro.analysis.lockorder`; both register
here.  Per-line suppression (``# repro: ignore[RULE-ID]``) and the
baseline file are applied by the driver, not by individual rules.
"""

from __future__ import annotations

import ast
from fnmatch import fnmatchcase
from typing import Iterable, Iterator

from repro.analysis.walker import (
    Finding,
    ModuleInfo,
    ancestors,
    dotted_name,
    enclosing_function,
    fstring_glob,
    literal_str,
)

RULES: dict[str, "Rule"] = {}


class Rule:
    """One registered check.

    ``packages`` limits a module-scope rule to source packages under
    the project root (``None`` = every module).  Project-scope rules
    see the whole module set at once (import graph, lock graph).
    """

    id: str = ""
    summary: str = ""
    scope: str = "module"  # or "project"
    packages: frozenset[str] | None = None

    def applies_to(self, info: ModuleInfo) -> bool:
        return self.packages is None or info.package in self.packages

    def check(self, info: ModuleInfo) -> Iterator[Finding]:
        return iter(())

    def check_project(
        self, modules: list[ModuleInfo]
    ) -> Iterator[Finding]:
        return iter(())


def register(cls: type[Rule]) -> type[Rule]:
    rule = cls()
    if rule.id in RULES:
        raise ValueError(f"duplicate rule id {rule.id}")
    RULES[rule.id] = rule
    return cls


def all_rules() -> list[Rule]:
    return [RULES[rule_id] for rule_id in sorted(RULES)]


# ----------------------------------------------------------------------
# REPRO-PAGE: page-accounting discipline
# ----------------------------------------------------------------------

#: Methods that walk raw adjacency without charging a page access.
_RAW_TRAVERSAL = frozenset({"neighbors", "seed_frontier"})
#: The page-charged expander types only network/ and the engine's
#: backend factories may construct.
_EXPANDER_TYPES = frozenset({"DijkstraExpander", "AStarExpander"})


@register
class PageRawTraversal(Rule):
    """Algorithm layers must not walk raw adjacency lists."""

    id = "REPRO-PAGE01"
    summary = (
        "direct adjacency traversal outside the store/expander path "
        "(.neighbors()/.seed_frontier()/._adjacency); route through "
        "DistanceEngine expanders so page accounting is charged"
    )
    packages = frozenset({"core", "engine", "skyline", "extensions"})

    def check(self, info: ModuleInfo) -> Iterator[Finding]:
        for node in ast.walk(info.tree):
            if isinstance(node, ast.Call) and isinstance(
                node.func, ast.Attribute
            ):
                if node.func.attr in _RAW_TRAVERSAL:
                    yield Finding(
                        self.id,
                        info.path,
                        node.lineno,
                        node.col_offset,
                        f".{node.func.attr}() bypasses page accounting; "
                        "use a DistanceEngine expander "
                        "(engine.expander()/astar_expander()/ine_expander())",
                    )
            elif (
                isinstance(node, ast.Attribute)
                and node.attr == "_adjacency"
            ):
                yield Finding(
                    self.id,
                    info.path,
                    node.lineno,
                    node.col_offset,
                    "._adjacency access bypasses page accounting",
                )


@register
class PageUnchargedExpansion(Rule):
    """network/ traversal helpers must charge the store per node."""

    id = "REPRO-PAGE02"
    summary = (
        "a network/ function expands .neighbors() without a "
        "store.touch_node() page charge in the same function"
    )
    packages = frozenset({"network"})
    # graph.py defines the adjacency structure itself; its in-memory
    # helpers (connectivity, validation) are not on the query path.
    exempt_basenames = frozenset({"graph.py"})

    def check(self, info: ModuleInfo) -> Iterator[Finding]:
        if info.basename in self.exempt_basenames:
            return
        for func in info.functions():
            traversals: list[ast.Call] = []
            charges = False
            for node in ast.walk(func):
                if node is not func and enclosing_function(node) is not func:
                    continue  # nested defs are visited on their own
                if isinstance(node, ast.Call) and isinstance(
                    node.func, ast.Attribute
                ):
                    if node.func.attr == "neighbors":
                        traversals.append(node)
                    elif node.func.attr == "touch_node":
                        charges = True
                elif isinstance(node, ast.Attribute) and (
                    node.attr == "touch_node"
                ):
                    charges = True
            if charges:
                continue
            for call in traversals:
                yield Finding(
                    self.id,
                    info.path,
                    call.lineno,
                    call.col_offset,
                    f"{func.name}() expands .neighbors() without charging "
                    "store.touch_node(); page accounting is silently "
                    "skipped (the PR 1 store-less-expander bug class)",
                )


@register
class PageAdhocExpander(Rule):
    """Expander construction is the engine's job."""

    id = "REPRO-PAGE03"
    summary = (
        "DijkstraExpander/AStarExpander constructed outside network/ "
        "and engine/; pooled engine expanders keep page accounting "
        "and wavefront reuse intact"
    )

    def applies_to(self, info: ModuleInfo) -> bool:
        return info.package not in ("network", "engine", "")

    def check(self, info: ModuleInfo) -> Iterator[Finding]:
        for node in ast.walk(info.tree):
            if not isinstance(node, ast.Call):
                continue
            target = node.func
            name = (
                target.attr
                if isinstance(target, ast.Attribute)
                else target.id
                if isinstance(target, ast.Name)
                else None
            )
            if name in _EXPANDER_TYPES:
                yield Finding(
                    self.id,
                    info.path,
                    node.lineno,
                    node.col_offset,
                    f"ad-hoc {name} construction; use "
                    "workspace.engine.expander()/astar_expander()/"
                    "ine_expander() so the store and pool are wired in",
                )


# ----------------------------------------------------------------------
# REPRO-LOCK: lock discipline
# ----------------------------------------------------------------------

#: Attribute pairs (owner attr, method) that mutate Workspace-derived
#: state and must run under workspace.mutating().
_GUARDED_MUTATIONS = frozenset(
    {
        ("objects", "add"),
        ("objects", "remove"),
        ("middle", "add_object"),
        ("middle", "remove_object"),
        ("object_rtree", "insert_point"),
        ("object_rtree", "delete_point"),
        ("network", "update_edge_length"),
    }
)

#: Callee terminal names that block (I/O, sleeps, batch distance work).
_BLOCKING_CALLS = frozenset(
    {
        "matrix",
        "vectors",
        "sleep",
        "urlopen",
        "serve_forever",
        "getresponse",
    }
)

_LOCKISH_FRAGMENTS = ("lock", "cond", "mutex", "sem")
#: with-item calls that take the exclusive side of a lock.
_EXCLUSIVE_CONTEXTS = frozenset({"write_locked", "mutating"})


def _receiver_terminal(node: ast.Call) -> str | None:
    """For ``a.b.method()`` the penultimate name ``b`` (or ``a`` for
    ``a.method()``)."""
    func = node.func
    if not isinstance(func, ast.Attribute):
        return None
    value = func.value
    if isinstance(value, ast.Attribute):
        return value.attr
    if isinstance(value, ast.Name):
        return value.id
    return None


def _is_lockish_expr(expr: ast.expr) -> bool:
    """Heuristic: does this with-item expression denote a mutex?

    Matches plain lock objects (``self._lock``, ``self._cond``, a
    ``*lock*``-named local) and exclusive-side context calls
    (``.write_locked()``, ``.mutating()``).  Read-side contexts
    (``reading()``/``read_locked()``) are deliberately excluded:
    queries hold the shared side for their entire execution by design.
    """
    if isinstance(expr, ast.Call):
        if isinstance(expr.func, ast.Attribute):
            return expr.func.attr in _EXCLUSIVE_CONTEXTS
        return False
    dotted = dotted_name(expr)
    if dotted is None:
        return False
    terminal = dotted.rsplit(".", 1)[-1].lower()
    return any(fragment in terminal for fragment in _LOCKISH_FRAGMENTS)


def _held_lock_items(node: ast.AST) -> list[ast.withitem]:
    """The lock-like with-items statically enclosing ``node``."""
    held = []
    for up in ancestors(node):
        if isinstance(up, (ast.With, ast.AsyncWith)):
            for item in up.items:
                if _is_lockish_expr(item.context_expr):
                    held.append(item)
    return held


@register
class LockUnguardedMutation(Rule):
    """Workspace-derived state mutates only under mutating()."""

    id = "REPRO-LOCK01"
    summary = (
        "Workspace state mutation (.objects/.middle/.object_rtree/"
        ".network writers) outside a with ...mutating() block"
    )
    packages = frozenset({"core", "service", "engine", "extensions"})

    def check(self, info: ModuleInfo) -> Iterator[Finding]:
        for node in ast.walk(info.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if not isinstance(func, ast.Attribute):
                continue
            owner = _receiver_terminal(node)
            if owner is None or (owner, func.attr) not in _GUARDED_MUTATIONS:
                continue
            guarded = any(
                isinstance(item.context_expr, ast.Call)
                and isinstance(item.context_expr.func, ast.Attribute)
                and item.context_expr.func.attr == "mutating"
                for up in ancestors(node)
                if isinstance(up, (ast.With, ast.AsyncWith))
                for item in up.items
            )
            if not guarded:
                yield Finding(
                    self.id,
                    info.path,
                    node.lineno,
                    node.col_offset,
                    f".{owner}.{func.attr}() mutates workspace state "
                    "outside `with workspace.mutating():`; concurrent "
                    "readers can observe a torn snapshot",
                )


@register
class LockBareAcquire(Rule):
    """No bare Lock.acquire() without with/try-finally."""

    id = "REPRO-LOCK02"
    summary = (
        "bare .acquire()/.acquire_read()/.acquire_write() statement "
        "without a `with` context or an immediate try/finally release"
    )

    _ACQUIRES = {
        "acquire": "release",
        "acquire_read": "release_read",
        "acquire_write": "release_write",
    }

    def check(self, info: ModuleInfo) -> Iterator[Finding]:
        for node in ast.walk(info.tree):
            if not (
                isinstance(node, ast.Expr)
                and isinstance(node.value, ast.Call)
                and isinstance(node.value.func, ast.Attribute)
                and node.value.func.attr in self._ACQUIRES
            ):
                continue
            receiver = dotted_name(node.value.func.value)
            release = self._ACQUIRES[node.value.func.attr]
            if self._released_in_finally(node, receiver, release):
                continue
            yield Finding(
                self.id,
                info.path,
                node.lineno,
                node.col_offset,
                f"bare .{node.value.func.attr}() without a matching "
                f".{release}() in an immediate try/finally; use a "
                "`with` context so errors cannot leak the lock",
            )

    @staticmethod
    def _released_in_finally(
        stmt: ast.Expr, receiver: str | None, release: str
    ) -> bool:
        def releases(try_node: ast.Try) -> bool:
            for inner in ast.walk(ast.Module(body=try_node.finalbody, type_ignores=[])):
                if (
                    isinstance(inner, ast.Call)
                    and isinstance(inner.func, ast.Attribute)
                    and inner.func.attr == release
                    and (
                        receiver is None
                        or dotted_name(inner.func.value) == receiver
                    )
                ):
                    return True
            return False

        parent = getattr(stmt, "parent", None)
        # Pattern A: acquire(); try: ... finally: release()
        body = getattr(parent, "body", None)
        if isinstance(body, list) and stmt in body:
            index = body.index(stmt)
            if index + 1 < len(body) and isinstance(body[index + 1], ast.Try):
                if releases(body[index + 1]):
                    return True
        # Pattern B: the acquire is already inside such a try's body.
        for up in ancestors(stmt):
            if isinstance(up, ast.Try) and releases(up):
                return True
        return False


@register
class LockBlockingCall(Rule):
    """No blocking work while statically holding a mutex."""

    id = "REPRO-LOCK03"
    summary = (
        "blocking call (engine.matrix/vectors, sleep, HTTP I/O) made "
        "while statically inside a mutex/exclusive-lock context"
    )

    def check(self, info: ModuleInfo) -> Iterator[Finding]:
        for node in ast.walk(info.tree):
            if not isinstance(node, ast.Call):
                continue
            terminal = (
                node.func.attr
                if isinstance(node.func, ast.Attribute)
                else node.func.id
                if isinstance(node.func, ast.Name)
                else None
            )
            if terminal not in _BLOCKING_CALLS:
                continue
            held = _held_lock_items(node)
            if not held:
                continue
            locks = ", ".join(
                filter(
                    None,
                    (
                        dotted_name(item.context_expr)
                        or ast.unparse(item.context_expr)
                        for item in held
                    ),
                )
            )
            yield Finding(
                self.id,
                info.path,
                node.lineno,
                node.col_offset,
                f"blocking call .{terminal}() while holding {locks}; "
                "every other thread contending for the lock stalls for "
                "the full call — move the work outside the critical "
                "section",
            )


# ----------------------------------------------------------------------
# REPRO-PERF: columnar hot-path allocation discipline
# ----------------------------------------------------------------------

#: Builtin constructors that allocate a fresh container per call.
_BUILTIN_ALLOCATORS = frozenset({"tuple", "list", "dict", "set"})
#: Targets/values of a tuple swap that reference existing storage.
_SWAP_SIMPLE = (ast.Name, ast.Attribute, ast.Subscript)


def _is_swap_assign(node: ast.AST) -> bool:
    """``x, y = y, x`` style rotations; CPython never materialises the
    tuple for these, and the Hilbert curve kernel leans on the idiom."""
    if not (isinstance(node, ast.Assign) and len(node.targets) == 1):
        return False
    target, value = node.targets[0], node.value
    if not (isinstance(target, ast.Tuple) and isinstance(value, ast.Tuple)):
        return False
    return all(isinstance(e, _SWAP_SIMPLE) for e in target.elts) and all(
        isinstance(e, _SWAP_SIMPLE) for e in value.elts
    )


@register
class PerfLoopAllocation(Rule):
    """repro.columnar loop bodies stay allocation-free."""

    id = "REPRO-PERF01"
    summary = (
        "per-element object construction (container literal, "
        "tuple()/list()/dict()/set(), comprehension, or class "
        "instantiation) inside a repro.columnar loop body; the "
        "columnar contract is flat-buffer arithmetic with no per-row "
        "Python objects on the hot path"
    )
    packages = frozenset({"columnar"})

    def check(self, info: ModuleInfo) -> Iterator[Finding]:
        seen: set[tuple[int, int]] = set()
        for node in ast.walk(info.tree):
            if isinstance(node, (ast.For, ast.While)):
                for stmt in [*node.body, *node.orelse]:
                    yield from self._scan(info, stmt, seen)

    def _scan(
        self, info: ModuleInfo, node: ast.AST, seen: set[tuple[int, int]]
    ) -> Iterator[Finding]:
        if isinstance(
            node,
            (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda, ast.Raise),
        ):
            # Error paths and nested callables are not per-row work.
            return
        if _is_swap_assign(node):
            return
        message = self._allocation(node)
        if message is not None:
            key = (node.lineno, node.col_offset)
            if key not in seen:
                seen.add(key)
                yield Finding(
                    self.id, info.path, node.lineno, node.col_offset, message
                )
        for child in ast.iter_child_nodes(node):
            yield from self._scan(info, child, seen)

    @staticmethod
    def _allocation(node: ast.AST) -> str | None:
        if isinstance(
            node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)
        ):
            return (
                "comprehension builds a fresh container every iteration; "
                "write into a preallocated buffer instead"
            )
        if isinstance(node, (ast.List, ast.Set, ast.Dict)):
            return (
                "container literal allocated per iteration; hoist it out "
                "of the loop or use a flat buffer"
            )
        if isinstance(node, ast.Tuple) and isinstance(node.ctx, ast.Load):
            return (
                "tuple materialised per iteration; keep rows in the flat "
                "float buffer and pass (buffer, offset) instead"
            )
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
            name = node.func.id
            if name in _BUILTIN_ALLOCATORS:
                return (
                    f"{name}() allocates a container per iteration; "
                    "preallocate outside the loop"
                )
            if name[:1].isupper() and not name.isupper():
                return (
                    f"{name}(...) instantiates an object per iteration; "
                    "the columnar plane passes index handles, not objects"
                )
        return None


# ----------------------------------------------------------------------
# REPRO-TELE: telemetry vocabulary
# ----------------------------------------------------------------------

_RECORD_TARGETS = frozenset(
    {"repro.obs.tracing.record", "repro.obs.record"}
)
_SPAN_TARGETS = frozenset({"repro.obs.tracing.span", "repro.obs.span"})
_REGISTRY_METHODS = frozenset(
    {"counter", "gauge", "histogram", "register_callback"}
)
_REGISTRY_RECEIVERS = frozenset({"registry", "metrics"})


def _vocab():
    # Imported lazily so the analysis package stays importable even if
    # repro.obs is mid-refactor; the vocabulary itself is plain data.
    from repro.obs import names

    return names


def _name_arg(node: ast.Call) -> ast.expr | None:
    if node.args:
        return node.args[0]
    for keyword in node.keywords:
        if keyword.arg in ("name", "key"):
            return keyword.value
    return None


def _check_name(
    rule: Rule,
    info: ModuleInfo,
    call: ast.Call,
    kind: str,
    exact: Iterable[str],
    patterns: Iterable[str],
) -> Iterator[Finding]:
    arg = _name_arg(call)
    if arg is None:
        return
    value = literal_str(arg)
    if value is not None:
        if value in exact or any(
            fnmatchcase(value, pattern) for pattern in patterns
        ):
            return
        yield Finding(
            rule.id,
            info.path,
            call.lineno,
            call.col_offset,
            f"{kind} {value!r} is not registered in repro.obs.names; "
            "add it to the vocabulary (or fix the typo) so /metricsz "
            "and trace reconciliation cannot drift",
        )
        return
    glob = fstring_glob(arg)
    if glob is None:
        # Dynamic names (variables) are out of static reach; the
        # runtime reconciliation tests cover those.
        return
    if glob in patterns or any(fnmatchcase(name, glob) for name in exact):
        return
    yield Finding(
        rule.id,
        info.path,
        call.lineno,
        call.col_offset,
        f"f-string {kind} matching {glob!r} has no registered "
        "counterpart in repro.obs.names (expected one of the "
        "registered patterns)",
    )


@register
class TelemetryCounterKey(Rule):
    """record() keys come from the registered vocabulary."""

    id = "REPRO-TELE01"
    summary = (
        "tracing.record() counter key not registered in "
        "repro.obs.names.COUNTER_KEYS"
    )

    def check(self, info: ModuleInfo) -> Iterator[Finding]:
        names = _vocab()
        for node in ast.walk(info.tree):
            if (
                isinstance(node, ast.Call)
                and info.resolve(node.func) in _RECORD_TARGETS
            ):
                yield from _check_name(
                    self,
                    info,
                    node,
                    "counter key",
                    names.COUNTER_KEYS,
                    names.COUNTER_KEY_PATTERNS,
                )


@register
class TelemetrySpanName(Rule):
    """span() names come from the registered vocabulary."""

    id = "REPRO-TELE02"
    summary = (
        "tracing.span() name not registered in "
        "repro.obs.names.SPAN_NAMES/SPAN_NAME_PATTERNS"
    )

    def check(self, info: ModuleInfo) -> Iterator[Finding]:
        names = _vocab()
        for node in ast.walk(info.tree):
            if (
                isinstance(node, ast.Call)
                and info.resolve(node.func) in _SPAN_TARGETS
            ):
                yield from _check_name(
                    self,
                    info,
                    node,
                    "span name",
                    names.SPAN_NAMES,
                    names.SPAN_NAME_PATTERNS,
                )


@register
class TelemetryMetricFamily(Rule):
    """Registered Prometheus families only."""

    id = "REPRO-TELE03"
    summary = (
        "metric family registered on a MetricRegistry is not in "
        "repro.obs.names.METRIC_FAMILIES"
    )

    def check(self, info: ModuleInfo) -> Iterator[Finding]:
        if info.module.startswith("repro.obs."):
            return  # the registry implementation itself
        names = _vocab()
        for node in ast.walk(info.tree):
            if not (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in _REGISTRY_METHODS
            ):
                continue
            receiver = _receiver_terminal(node)
            if receiver not in _REGISTRY_RECEIVERS:
                continue
            yield from _check_name(
                self, info, node, "metric family", names.METRIC_FAMILIES, ()
            )
