"""``python -m repro.bench`` / ``repro bench`` entry point.

Exit codes: 0 = ran (and compared clean, if asked); 1 = deterministic
counter regression against the baseline; 2 = usage error or unreadable
baseline/artifact.
"""

from __future__ import annotations

import argparse
import sys

from repro.bench.compare import (
    DEFAULT_COUNTER_TOLERANCE,
    DEFAULT_TIMING_TOLERANCE,
    compare_artifacts,
    format_report,
    load_artifact,
)
from repro.bench.runner import (
    CounterDrift,
    current_revision,
    default_artifact_name,
    run_suite,
    write_artifact,
)
from repro.bench.suite import SUITES, suite_workloads
from repro.bench.xl import (
    XL_SUITES,
    default_scaling_report_name,
    format_scaling_report,
    run_xl_suite,
)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro bench",
        description=(
            "Run the versioned benchmark suite; emit a BENCH_<rev>.json "
            "artifact; optionally gate it against a baseline artifact."
        ),
    )
    parser.add_argument(
        "--suite",
        default="quick",
        choices=sorted(SUITES),
        help="workload suite to run (default: quick)",
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="shorthand for --suite quick --repeats 1 (the CI gate)",
    )
    parser.add_argument(
        "--xl",
        metavar="TIER",
        default=None,
        choices=sorted(XL_SUITES),
        help="run an xl scaling tier instead of a regular suite; also "
        "writes SCALING_<rev>.json and prints the scaling report",
    )
    parser.add_argument(
        "--repeats",
        type=int,
        default=None,
        help="override timing repeats per workload "
        "(counters are verified identical across repeats)",
    )
    parser.add_argument(
        "--out",
        default=None,
        help="artifact path (default: BENCH_<revision>.json)",
    )
    parser.add_argument(
        "--revision",
        default=None,
        help="revision stamp (default: $REPRO_BENCH_REV, else git HEAD)",
    )
    parser.add_argument(
        "--compare",
        metavar="BASELINE",
        default=None,
        help="gate the fresh artifact against this baseline JSON",
    )
    parser.add_argument(
        "--counter-tolerance",
        type=float,
        default=DEFAULT_COUNTER_TOLERANCE,
        help="relative slack on deterministic counters (default: 0.0)",
    )
    parser.add_argument(
        "--timing-tolerance",
        type=float,
        default=DEFAULT_TIMING_TOLERANCE,
        help="relative slack before a (non-fatal) timing warning "
        "(default: 0.5)",
    )
    parser.add_argument(
        "--list",
        action="store_true",
        help="list the suite's workloads and exit",
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    suite = "quick" if args.quick else args.suite
    repeats = 1 if (args.quick and args.repeats is None) else args.repeats
    if repeats is not None and repeats < 1:
        parser.error(f"--repeats must be >= 1, got {repeats}")

    if args.list:
        if args.xl is not None:
            for workload in XL_SUITES[args.xl]:
                print(f"{workload.workload_id}  [xl]")
            return 0
        for workload in suite_workloads(suite):
            print(f"{workload.workload_id}  [{workload.kind}]")
        return 0

    revision = args.revision or current_revision()
    if args.xl is not None:
        return _run_xl(args, revision)
    print(f"bench: suite={suite} revision={revision}")
    try:
        artifact = run_suite(
            suite, repeats=repeats, revision=revision, progress=print
        )
    except CounterDrift as drift:
        print(f"FAIL  {drift}", file=sys.stderr)
        return 1

    out_path = args.out or default_artifact_name(revision)
    write_artifact(artifact, out_path)
    print(f"bench: wrote {out_path} ({len(artifact['benchmarks'])} records)")

    if args.compare is None:
        return 0
    try:
        baseline = load_artifact(args.compare)
    except (OSError, ValueError, KeyError) as exc:
        print(f"bench: cannot read baseline: {exc}", file=sys.stderr)
        return 2
    report = compare_artifacts(
        baseline,
        artifact,
        counter_tolerance=args.counter_tolerance,
        timing_tolerance=args.timing_tolerance,
    )
    print(format_report(report))
    return 0 if report.ok else 1


def _run_xl(args, revision: str) -> int:
    """Run an xl scaling tier; same exit-code contract as the suites."""
    print(f"bench: xl tier={args.xl} revision={revision}")
    artifact = run_xl_suite(args.xl, revision=revision, progress=print)
    out_path = args.out or default_scaling_report_name(revision)
    write_artifact(artifact, out_path)
    print(f"bench: wrote {out_path} ({len(artifact['benchmarks'])} records)")
    print(format_scaling_report(artifact))

    if args.compare is None:
        return 0
    try:
        baseline = load_artifact(args.compare)
    except (OSError, ValueError, KeyError) as exc:
        print(f"bench: cannot read baseline: {exc}", file=sys.stderr)
        return 2
    report = compare_artifacts(
        baseline,
        artifact,
        counter_tolerance=args.counter_tolerance,
        timing_tolerance=args.timing_tolerance,
    )
    print(format_report(report))
    return 0 if report.ok else 1


if __name__ == "__main__":
    sys.exit(main())
