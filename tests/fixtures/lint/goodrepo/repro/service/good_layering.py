"""Imports flowing strictly downward in the layer DAG."""

from repro.core import Workspace
from repro.obs import tracing


def build(network, objects):
    with tracing.span("request.build"):
        return Workspace.build(network, objects)
