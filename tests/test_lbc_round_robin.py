"""Tests for the round-robin multi-source LBC extension."""

import pytest

from repro.core import LBC, LBCRoundRobin, NaiveSkyline, Workspace

from conftest import build_random_network, place_random_objects, random_locations


@pytest.fixture(scope="module")
def workload():
    network = build_random_network(70, 45, seed=301, detour_max=0.7)
    objects = place_random_objects(network, 45, seed=302)
    workspace = Workspace.build(network, objects, paged=False)
    queries = random_locations(network, 4, seed=303)
    reference = NaiveSkyline().run(workspace, queries)
    return workspace, queries, reference


class TestRoundRobinLBC:
    def test_matches_oracle(self, workload):
        workspace, queries, reference = workload
        assert LBCRoundRobin().run(workspace, queries).same_answer(reference)

    def test_matches_plain_lbc(self, workload):
        workspace, queries, _ = workload
        plain = LBC().run(workspace, queries)
        round_robin = LBCRoundRobin().run(workspace, queries)
        assert round_robin.same_answer(plain)

    def test_single_query_point(self, workload):
        workspace, queries, _ = workload
        single = [queries[0]]
        reference = NaiveSkyline().run(workspace, single)
        assert LBCRoundRobin().run(workspace, single).same_answer(reference)

    def test_noplb_ablation_agrees(self, workload):
        workspace, queries, reference = workload
        result = LBCRoundRobin(use_lower_bounds=False).run(workspace, queries)
        assert result.same_answer(reference)
        assert result.stats.algorithm == "LBC-rr-noplb"

    def test_name(self):
        assert LBCRoundRobin().name == "LBC-rr"

    def test_balanced_early_reporting(self, workload):
        """The first few reported points should not all cluster around a
        single query point: each stream contributes its local NN early.

        Plain LBC's first reports all minimise the source dimension;
        round-robin's early reports minimise *different* dimensions.
        """
        workspace, queries, _ = workload
        result = LBCRoundRobin().run(workspace, queries)
        if len(result) < len(queries):
            pytest.skip("skyline smaller than |Q|; nothing to balance")
        early = result.points[: len(queries)]
        # For each early point, which dimension is its best?  Expect at
        # least two distinct dimensions represented.
        best_dims = {
            min(range(len(queries)), key=lambda i: p.vector[i]) for p in early
        }
        assert len(best_dims) >= 2

    def test_with_attributes(self):
        network = build_random_network(60, 40, seed=311, detour_max=0.6)
        objects = place_random_objects(network, 35, seed=312, attribute_count=1)
        workspace = Workspace.build(network, objects, paged=False)
        queries = random_locations(network, 3, seed=313)
        reference = NaiveSkyline().run(workspace, queries)
        assert LBCRoundRobin().run(workspace, queries).same_answer(reference)

    def test_disconnected(self):
        from repro.geometry import Point
        from repro.network import ObjectSet, RoadNetwork, SpatialObject

        net = RoadNetwork()
        for i, xy in enumerate([(0, 0), (0.2, 0), (0.8, 0.8), (0.9, 0.8)]):
            net.add_node(i, Point(*xy))
        e1 = net.add_edge(0, 1)
        e2 = net.add_edge(2, 3)
        objects = ObjectSet.build(
            net,
            [
                SpatialObject(0, net.location_on_edge(e1.edge_id, e1.length / 2)),
                SpatialObject(1, net.location_on_edge(e2.edge_id, e2.length / 2)),
            ],
        )
        ws = Workspace.build(net, objects, paged=False)
        queries = [net.location_at_node(0), net.location_at_node(2)]
        reference = NaiveSkyline().run(ws, queries)
        assert LBCRoundRobin().run(ws, queries).same_answer(reference)
