"""Serving-side metrics: latency percentiles over a sliding window.

``/statsz`` reports p50/p95/p99 request latency.  Exact percentiles
over an unbounded history would grow without limit, so the recorder
keeps a fixed-size window of the most recent samples (plus lifetime
count/sum); under steady load that is the standard "recent latency"
view load balancers alarm on.  Thread-safe — workers record
completions concurrently.
"""

from __future__ import annotations

import threading
from collections import deque

DEFAULT_WINDOW = 2048


class LatencyRecorder:
    """Sliding-window latency samples with nearest-rank percentiles."""

    def __init__(self, window: int = DEFAULT_WINDOW) -> None:
        if window < 1:
            raise ValueError(f"window must be >= 1, got {window}")
        self._samples: deque[float] = deque(maxlen=window)
        self._lock = threading.Lock()
        self._count = 0
        self._total = 0.0

    def record(self, latency_s: float) -> None:
        with self._lock:
            self._samples.append(latency_s)
            self._count += 1
            self._total += latency_s

    @property
    def count(self) -> int:
        """Lifetime number of recorded samples."""
        with self._lock:
            return self._count

    def mean(self) -> float:
        """Lifetime mean latency (0.0 before the first sample)."""
        with self._lock:
            if self._count == 0:
                return 0.0
            return self._total / self._count

    def percentile(self, p: float) -> float:
        """Nearest-rank percentile over the window (0.0 when empty)."""
        with self._lock:
            ordered = sorted(self._samples)
        return self._nearest_rank(ordered, p)

    @staticmethod
    def _nearest_rank(ordered: list[float], p: float) -> float:
        if not 0.0 < p <= 100.0:
            raise ValueError(f"percentile must be in (0, 100], got {p}")
        if not ordered:
            return 0.0
        rank = max(1, -(-len(ordered) * p // 100))  # ceil without floats
        return ordered[int(rank) - 1]

    def summary(self) -> dict[str, float]:
        """The flat block ``/statsz`` embeds.

        One snapshot, one sort: count, mean and all three percentiles
        come from a single sorted copy of the window instead of
        re-locking and re-sorting per field (the window is 2k samples,
        and ``/statsz`` may be polled at high frequency).
        """
        with self._lock:
            count = self._count
            total = self._total
            ordered = sorted(self._samples)
        return {
            "count": count,
            "mean_s": round(total / count, 6) if count else 0.0,
            "p50_s": round(self._nearest_rank(ordered, 50), 6),
            "p95_s": round(self._nearest_rank(ordered, 95), 6),
            "p99_s": round(self._nearest_rank(ordered, 99), 6),
        }
