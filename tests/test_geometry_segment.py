"""Unit tests for repro.geometry.segment."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.geometry import Point, Segment

finite = st.floats(min_value=-100, max_value=100, allow_nan=False, allow_infinity=False)
points = st.builds(Point, finite, finite)


class TestSegmentBasics:
    def test_length(self):
        assert Segment(Point(0, 0), Point(3, 4)).length == 5.0

    def test_point_at_endpoints(self):
        seg = Segment(Point(0, 0), Point(10, 0))
        assert seg.point_at(0) == Point(0, 0)
        assert seg.point_at(10) == Point(10, 0)

    def test_point_at_midway(self):
        seg = Segment(Point(0, 0), Point(10, 0))
        assert seg.point_at(4) == Point(4, 0)

    def test_point_at_clamps_overshoot(self):
        seg = Segment(Point(0, 0), Point(10, 0))
        assert seg.point_at(-1) == Point(0, 0)
        assert seg.point_at(11) == Point(10, 0)

    def test_point_at_degenerate_segment(self):
        seg = Segment(Point(1, 1), Point(1, 1))
        assert seg.point_at(0.5) == Point(1, 1)

    def test_point_at_fraction(self):
        seg = Segment(Point(0, 0), Point(2, 2))
        assert seg.point_at_fraction(0.5) == Point(1, 1)

    def test_point_at_fraction_out_of_range_raises(self):
        seg = Segment(Point(0, 0), Point(1, 0))
        with pytest.raises(ValueError):
            seg.point_at_fraction(1.5)

    def test_reversed(self):
        seg = Segment(Point(0, 0), Point(1, 2))
        assert seg.reversed() == Segment(Point(1, 2), Point(0, 0))


class TestProjection:
    def test_project_onto_interior(self):
        seg = Segment(Point(0, 0), Point(10, 0))
        offset, closest = seg.project(Point(4, 3))
        assert offset == 4.0
        assert closest == Point(4, 0)

    def test_project_clamps_to_start(self):
        seg = Segment(Point(0, 0), Point(10, 0))
        offset, closest = seg.project(Point(-5, 2))
        assert offset == 0.0
        assert closest == Point(0, 0)

    def test_project_clamps_to_end(self):
        seg = Segment(Point(0, 0), Point(10, 0))
        offset, closest = seg.project(Point(15, 2))
        assert offset == 10.0
        assert closest == Point(10, 0)

    def test_project_degenerate(self):
        seg = Segment(Point(1, 1), Point(1, 1))
        assert seg.project(Point(5, 5)) == (0.0, Point(1, 1))

    def test_distance_to_point(self):
        seg = Segment(Point(0, 0), Point(10, 0))
        assert seg.distance_to_point(Point(5, 3)) == 3.0

    @given(points, points, points)
    def test_projection_is_closest_of_samples(self, a, b, p):
        seg = Segment(a, b)
        best = seg.distance_to_point(p)
        for i in range(11):
            sample = a.lerp(b, i / 10)
            assert best <= p.distance_to(sample) + 1e-7

    @given(points, points, points)
    def test_projected_offset_within_length(self, a, b, p):
        seg = Segment(a, b)
        offset, _ = seg.project(p)
        assert -1e-9 <= offset <= seg.length + 1e-9
