"""Tests for the experiment harness, figure runners and reporting."""

import pytest

from repro.core import CE, LBC
from repro.experiments import (
    ExperimentConfig,
    WorkloadCache,
    format_series,
    run_experiment,
    run_fig4a,
    winner_summary,
)
from repro.experiments.figures import FigureSeries
from repro.experiments.harness import AggregateStats


TINY = ExperimentConfig(
    network="CA", scale=0.03, omega=0.3, query_count=2, trials=2
)


@pytest.fixture(scope="module")
def cache():
    return WorkloadCache()


class TestExperimentConfig:
    def test_with_creates_modified_copy(self):
        base = ExperimentConfig()
        changed = base.with_(query_count=8)
        assert changed.query_count == 8
        assert base.query_count == 4
        assert changed.network == base.network

    def test_defaults_match_paper(self):
        base = ExperimentConfig()
        assert base.network == "NA"
        assert base.omega == 0.50
        assert base.query_count == 4
        assert base.region_fraction == 0.10


class TestWorkloadCache:
    def test_workspace_reused(self, cache):
        a = cache.workspace(TINY)
        b = cache.workspace(TINY)
        assert a is b

    def test_different_omega_different_workspace(self, cache):
        a = cache.workspace(TINY)
        b = cache.workspace(TINY.with_(omega=0.6))
        assert a is not b

    def test_network_shared_across_omegas(self, cache):
        a = cache.workspace(TINY)
        b = cache.workspace(TINY.with_(omega=0.6))
        assert a.network is b.network

    def test_clear(self):
        local = WorkloadCache()
        first = local.workspace(TINY)
        local.clear()
        assert local.workspace(TINY) is not first


class TestRunExperiment:
    def test_aggregates_all_algorithms(self, cache):
        out = run_experiment(TINY, [CE(), LBC()], cache=cache)
        assert set(out) == {"CE", "LBC"}
        for aggregate in out.values():
            assert aggregate.trials == 2
            assert aggregate.skyline_count >= 1
            assert aggregate.total_response_s > 0

    def test_metric_lookup(self, cache):
        out = run_experiment(TINY, [LBC()], cache=cache)
        aggregate = out["LBC"]
        assert aggregate.metric("candidate_ratio") == aggregate.candidate_ratio

    def test_aggregate_from_empty_rejected(self):
        with pytest.raises(ValueError):
            AggregateStats.from_stats([])


class TestFigureRunners:
    def test_fig4a_structure(self, cache):
        series = run_fig4a(TINY, q_values=(2, 3), cache=cache)
        assert series.figure == "Fig4a"
        assert series.x_values == [2, 3]
        assert set(series.series) == {"CE", "EDC", "LBC"}
        for values in series.series.values():
            assert len(values) == 2
            assert all(0 <= v <= 1 for v in values)

    def test_format_series_contains_rows(self, cache):
        series = run_fig4a(TINY, q_values=(2,), cache=cache)
        text = format_series(series)
        assert "Fig4a" in text
        assert "LBC" in text
        assert "|C|/|D|" in text

    def test_winner_summary(self):
        series = FigureSeries(
            figure="X", title="t", x_label="x", y_label="y",
            x_values=[1, 2],
            series={"A": [1.0, 5.0], "B": [2.0, 1.0]},
        )
        assert winner_summary(series) == {"A": 1, "B": 1}


class TestAblations:
    @pytest.fixture(scope="class")
    def tiny_cache(self):
        return WorkloadCache()

    def test_plb_ablation_structure(self, tiny_cache):
        from repro.experiments import run_ablation_plb

        series = run_ablation_plb(TINY, tiny_cache)
        assert set(series.series) == {"LBC", "LBC-noplb"}
        assert series.x_values == ["CA", "AU", "NA"]

    def test_lazy_ablation_lazy_never_worse_overall(self, tiny_cache):
        from repro.experiments import run_ablation_lazy

        series = run_ablation_lazy(TINY, tiny_cache)
        total_eager = sum(series.series["LBC"])
        total_lazy = sum(series.series["LBC-lazy"])
        assert total_lazy <= total_eager * 1.2

    def test_heuristic_ablation(self, tiny_cache):
        from repro.experiments import run_ablation_heuristic

        series = run_ablation_heuristic(TINY, tiny_cache, landmark_count=4)
        assert set(series.series) == {"LBC", "LBC-landmarks"}
        lbc, alt = series.series["LBC"][0], series.series["LBC-landmarks"][0]
        assert alt <= lbc

    def test_ce_strategy_ablation(self, tiny_cache):
        from repro.experiments import run_ablation_ce_strategy

        series = run_ablation_ce_strategy(TINY, tiny_cache)
        assert set(series.series) == {"CE", "CE-min-radius"}

    def test_buffer_ablation_monotone(self, tiny_cache):
        from repro.experiments import run_ablation_buffer

        series = run_ablation_buffer(
            TINY.with_(network="NA", scale=0.05), buffer_kib=(64, 1024),
            cache=tiny_cache,
        )
        small, big = series.series["CE"]
        assert big <= small
