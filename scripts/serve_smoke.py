#!/usr/bin/env python
"""CI smoke test for the serving layer.

Boots ``repro serve`` as a real subprocess on a generated preset
network, fires ~50 concurrent HTTP queries (plus a couple of
mutations), then shuts it down with SIGTERM.  Fails loudly if:

* any response is a 5xx (or a transport error),
* ``/statsz`` does not parse or lacks the advertised keys,
* ``/metricsz`` is not valid Prometheus text, contains a duplicate
  metric family, or lacks the serving-path families,
* no JSON traces are exported on shutdown (the server runs with
  ``--trace-dir``),
* ``/insightz`` shows no observed queries, or ``repro insight
  summarize`` cannot digest the wide-event log the server wrote,
* the server does not exit cleanly on SIGTERM.

The ``/metricsz`` scrape, the ``/slowlogz`` payload, the ``/insightz``
payload, the wide-event log, the ``repro insight summarize`` report
and the exported traces are written to ``$SMOKE_ARTIFACT_DIR`` (when
set) so CI can upload them as a workflow artifact — the insight report
is what the follow-up CI step diffs against
``benchmarks/insight_baseline.json``.

Run from the repository root::

    PYTHONPATH=src python scripts/serve_smoke.py
"""

from __future__ import annotations

import json
import os
import random
import signal
import subprocess
import sys
import tempfile
import threading
import time
import urllib.error
import urllib.request

CONCURRENT_QUERIES = 50
STARTUP_TIMEOUT_S = 60
SHUTDOWN_TIMEOUT_S = 30


def generate_dataset(tmpdir: str) -> tuple[str, str]:
    net_path = os.path.join(tmpdir, "smoke.net")
    obj_path = os.path.join(tmpdir, "smoke.obj")
    subprocess.run(
        [
            sys.executable, "-m", "repro.cli", "generate",
            "--preset", "CA", "--scale", "0.02", "--seed", "7",
            "--out", net_path, "--objects", obj_path, "--omega", "0.5",
        ],
        check=True,
        env=env_with_src(),
    )
    return net_path, obj_path


def env_with_src() -> dict:
    env = dict(os.environ)
    src = os.path.join(os.getcwd(), "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    return env


def wait_for_url(process: subprocess.Popen) -> str:
    """Parse the announced URL from the server's first stdout line."""
    deadline = time.monotonic() + STARTUP_TIMEOUT_S
    line = ""
    while time.monotonic() < deadline:
        line = process.stdout.readline()
        if not line:
            raise SystemExit(
                f"server exited during startup (rc={process.poll()})"
            )
        if " on http://" in line:
            url = line.rsplit(" on ", 1)[1].strip()
            break
    else:
        raise SystemExit(f"no startup line within {STARTUP_TIMEOUT_S}s: {line!r}")
    # Liveness gate before the load burst.
    for _ in range(100):
        try:
            with urllib.request.urlopen(url + "/healthz", timeout=5) as r:
                if r.status == 200:
                    return url
        except (urllib.error.URLError, ConnectionError):
            time.sleep(0.1)
    raise SystemExit("server never answered /healthz")


def node_ids_from(net_path: str) -> list[int]:
    sys.path.insert(0, os.path.join(os.getcwd(), "src"))
    from repro.datasets import load_network

    return sorted(load_network(net_path).node_ids())


def post_json(url: str, path: str, body: dict) -> tuple[int, dict]:
    request = urllib.request.Request(
        url + path,
        data=json.dumps(body).encode(),
        headers={"Content-Type": "application/json"},
        method="POST",
    )
    for attempt in range(3):
        try:
            with urllib.request.urlopen(request, timeout=120) as response:
                return response.status, json.loads(response.read())
        except urllib.error.HTTPError as exc:
            return exc.code, json.loads(exc.read())
        except (ConnectionError, urllib.error.URLError):
            # Transient connect-time failure; one retry is generous —
            # the server keeps a deep accept backlog.
            if attempt == 2:
                raise
            time.sleep(0.2 * (attempt + 1))


def check_metricsz(url: str, artifact_dir: str) -> None:
    """Scrape /metricsz, save it, and strictly validate the exposition."""
    from repro.obs import parse_prometheus_text

    with urllib.request.urlopen(url + "/metricsz", timeout=30) as r:
        content_type = r.headers.get("Content-Type", "")
        text = r.read().decode("utf-8")
    with open(os.path.join(artifact_dir, "metricsz.txt"), "w") as handle:
        handle.write(text)
    if not content_type.startswith("text/plain"):
        raise SystemExit(f"/metricsz content type {content_type!r}")
    # The strict parser raises on duplicate families, TYPE-before-HELP,
    # malformed labels — exactly the drift this smoke guards against.
    families = parse_prometheus_text(text)
    required = {
        "repro_service_requests_total",
        "repro_service_queue_depth",
        "repro_service_request_latency_seconds",
        "repro_buffer_reads_total",
        "repro_buffer_hit_ratio",
        "repro_engine_memo_events_total",
    }
    missing = required - set(families)
    if missing:
        raise SystemExit(f"/metricsz missing families: {sorted(missing)}")
    completed = [
        value
        for name, labels, value in families["repro_service_requests_total"]["samples"]
        if labels.get("outcome") == "completed"
    ]
    if not completed or completed[0] <= 0:
        raise SystemExit("/metricsz shows zero completed requests")
    print(
        f"smoke: metricsz ok — {len(families)} families, "
        f"no duplicates, completed={completed[0]:.0f}"
    )


def main() -> int:
    with tempfile.TemporaryDirectory() as tmpdir:
        artifact_dir = os.environ.get("SMOKE_ARTIFACT_DIR") or os.path.join(
            tmpdir, "artifacts"
        )
        os.makedirs(artifact_dir, exist_ok=True)
        trace_dir = os.path.join(artifact_dir, "traces")
        event_log = os.path.join(artifact_dir, "events.jsonl")
        net_path, obj_path = generate_dataset(tmpdir)
        nodes = node_ids_from(net_path)
        process = subprocess.Popen(
            [
                sys.executable, "-m", "repro.cli", "serve",
                net_path, obj_path, "--port", "0", "--workers", "4",
                "--trace-dir", trace_dir, "--event-log", event_log,
            ],
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
            env=env_with_src(),
        )
        try:
            url = wait_for_url(process)
            print(f"smoke: server up at {url}")

            rng = random.Random(2007)
            failures: list[str] = []
            statuses: list[int] = []
            lock = threading.Lock()

            def one_query(i: int) -> None:
                try:
                    # A couple of mutations ride along with the storm.
                    if i % 25 == 7:
                        status, payload = post_json(
                            url, "/mutate",
                            {"op": "remove_object", "object_id": -1},
                        )  # unknown id → 400, exercises the error path
                        expected_ok = (400,)
                    else:
                        queries = rng.sample(nodes, 3)
                        status, payload = post_json(
                            url, "/query",
                            {"algorithm": "LBC", "query_nodes": queries},
                        )
                        expected_ok = (200, 503)  # shedding ≠ failure
                except Exception as exc:
                    with lock:
                        failures.append(f"request {i}: transport error {exc}")
                    return
                with lock:
                    statuses.append(status)
                    if status >= 500 and status != 503:
                        failures.append(f"request {i}: {status} {payload}")
                    elif status not in expected_ok:
                        failures.append(f"request {i}: {status} {payload}")

            threads = [
                threading.Thread(target=one_query, args=(i,))
                for i in range(CONCURRENT_QUERIES)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=300)

            if failures:
                raise SystemExit("smoke failures:\n" + "\n".join(failures))
            if len(statuses) != CONCURRENT_QUERIES:
                raise SystemExit(
                    f"only {len(statuses)}/{CONCURRENT_QUERIES} "
                    "requests completed"
                )
            ok = sum(1 for s in statuses if s == 200)
            print(f"smoke: {len(statuses)} requests, {ok} × 200, no 5xx")

            with urllib.request.urlopen(url + "/statsz", timeout=30) as r:
                stats = json.loads(r.read())
            for key in ("queue", "requests", "latency_s", "batches", "engine"):
                if key not in stats:
                    raise SystemExit(f"/statsz missing {key!r}: {stats}")
            print(
                "smoke: statsz ok — completed="
                f"{stats['requests']['completed']} "
                f"shed={stats['queue']['shed']} "
                f"p95={stats['latency_s']['p95_s']}s "
                f"mean_batch={stats['batches']['mean_batch_size']}"
            )

            check_metricsz(url, artifact_dir)
            with urllib.request.urlopen(url + "/slowlogz", timeout=30) as r:
                slowlog = json.loads(r.read())
            with open(os.path.join(artifact_dir, "slowlogz.json"), "w") as h:
                json.dump(slowlog, h, indent=1)
            print(f"smoke: slowlogz ok — slow_count={slowlog['slow_count']}")

            with urllib.request.urlopen(url + "/insightz", timeout=30) as r:
                insight = json.loads(r.read())
            with open(os.path.join(artifact_dir, "insightz.json"), "w") as h:
                json.dump(insight, h, indent=1)
            if insight.get("schema") != "repro-insight-live":
                raise SystemExit(f"/insightz schema {insight.get('schema')!r}")
            if insight.get("observed", 0) <= 0 or not insight.get("cohorts"):
                raise SystemExit(f"/insightz saw no queries: {insight}")
            print(
                f"smoke: insightz ok — observed={insight['observed']} "
                f"over {len(insight['cohorts'])} cohort(s)"
            )
        finally:
            if process.poll() is None:
                process.send_signal(signal.SIGTERM)
            try:
                returncode = process.wait(timeout=SHUTDOWN_TIMEOUT_S)
            except subprocess.TimeoutExpired:
                process.kill()
                raise SystemExit("server ignored SIGTERM")
        remainder = process.stdout.read()
        if "shutdown complete" not in remainder:
            raise SystemExit(
                f"no clean shutdown message (rc={returncode}): {remainder!r}"
            )
        if returncode != 0:
            raise SystemExit(f"server exited with rc={returncode}")
        traces = sorted(
            f for f in os.listdir(trace_dir)
            if f.startswith("trace-") and f.endswith(".json")
        ) if os.path.isdir(trace_dir) else []
        if not traces:
            raise SystemExit(f"no traces exported to {trace_dir}")
        with open(os.path.join(trace_dir, traces[0])) as handle:
            root = json.load(handle)
        for key in ("name", "trace_id", "children", "counts"):
            if key not in root:
                raise SystemExit(f"trace {traces[0]} missing {key!r}")
        print(f"smoke: {len(traces)} traces exported, clean shutdown")

        # Offline leg: the wide-event log the server just flushed must
        # digest cleanly into the report CI diffs against the committed
        # insight baseline.
        if not os.path.exists(event_log):
            raise SystemExit(f"no wide-event log at {event_log}")
        report_path = os.path.join(artifact_dir, "insight_report.json")
        summarize = subprocess.run(
            [
                sys.executable, "-m", "repro.cli", "insight", "summarize",
                event_log, "--out", report_path,
            ],
            env=env_with_src(),
        )
        if summarize.returncode != 0:
            raise SystemExit(
                f"insight summarize failed (rc={summarize.returncode})"
            )
        with open(report_path) as handle:
            report = json.load(handle)
        if report.get("events", 0) <= 0 or not report.get("cohorts"):
            raise SystemExit(f"insight report digested nothing: {report_path}")
        if report.get("corrupt_lines", 0):
            raise SystemExit(
                f"event log had {report['corrupt_lines']} corrupt line(s) "
                "after a clean shutdown"
            )
        print(
            f"smoke: insight report ok — {report['events']} events, "
            f"{len(report['cohorts'])} cohort(s) -> {report_path}"
        )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
