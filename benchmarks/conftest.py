"""Shared fixtures for the benchmark suite.

Workspaces are built once per session and shared across benchmark
points (mirroring how the paper's experiments reuse datasets); every
measured run starts with a cold buffer via ``reset_io``.

The benchmark scale defaults to the experiment default (10 % of the
paper's node counts).  Set ``REPRO_BENCH_SCALE`` to change it.
"""

from __future__ import annotations

import os

import pytest

from repro.core import Workspace
from repro.datasets import build_preset, extract_objects, select_query_points

BENCH_SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "0.10"))
BENCH_BUFFER = 256 * 1024  # pressure-matched to the paper's 1 MiB (see DESIGN.md)


class BenchWorkloads:
    """Session-wide cache of (network, omega) -> workspace."""

    def __init__(self) -> None:
        self._networks: dict[str, object] = {}
        self._workspaces: dict[tuple[str, float], Workspace] = {}

    def network(self, name: str):
        if name not in self._networks:
            self._networks[name] = build_preset(name, scale=BENCH_SCALE)
        return self._networks[name]

    def workspace(self, name: str, omega: float = 0.50) -> Workspace:
        key = (name, omega)
        if key not in self._workspaces:
            network = self.network(name)
            objects = extract_objects(network, omega=omega, seed=1)
            self._workspaces[key] = Workspace.build(
                network, objects, paged=True, buffer_bytes=BENCH_BUFFER
            )
        return self._workspaces[key]

    def queries(self, name: str, count: int, seed: int = 100):
        return select_query_points(
            self.network(name), count, region_fraction=0.10, seed=seed
        )


@pytest.fixture(scope="session")
def workloads() -> BenchWorkloads:
    return BenchWorkloads()


def run_cold(workspace: Workspace, algorithm, queries):
    """One cold-buffer query execution; returns the result."""
    workspace.reset_io(cold=True)
    return algorithm.run(workspace, queries)


def attach_stats(benchmark, result) -> None:
    """Record the paper's series values alongside the timing."""
    s = result.stats
    benchmark.extra_info.update(
        {
            "skyline": s.skyline_count,
            "candidates": s.candidate_count,
            "candidate_ratio": round(s.candidate_ratio, 4),
            "nodes_settled": s.nodes_settled,
            "network_pages": s.network_pages,
            "total_pages": s.total_pages,
            "initial_response_s": round(s.initial_response_s, 6),
            "modeled_total_s": round(s.modeled_total_s, 6),
            "modeled_initial_s": round(s.modeled_initial_s, 6),
        }
    )
