"""Unit tests for repro.geometry.polyline."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.geometry import Point, Polyline

finite = st.floats(min_value=-100, max_value=100, allow_nan=False, allow_infinity=False)
points = st.builds(Point, finite, finite)
vertex_lists = st.lists(points, min_size=2, max_size=8)


class TestPolylineBasics:
    def test_needs_two_vertices(self):
        with pytest.raises(ValueError):
            Polyline((Point(0, 0),))

    def test_straight_constructor(self):
        line = Polyline.straight(Point(0, 0), Point(3, 4))
        assert line.length == 5.0
        assert line.start == Point(0, 0)
        assert line.end == Point(3, 4)

    def test_l_shape_length(self):
        line = Polyline((Point(0, 0), Point(3, 0), Point(3, 4)))
        assert line.length == 7.0

    def test_segments(self):
        line = Polyline((Point(0, 0), Point(1, 0), Point(1, 1)))
        segs = line.segments()
        assert len(segs) == 2
        assert segs[0].end == segs[1].start == Point(1, 0)

    def test_mbr(self):
        line = Polyline((Point(0, 0), Point(3, 0), Point(3, 4)))
        box = line.mbr()
        assert (box.min_x, box.min_y, box.max_x, box.max_y) == (0, 0, 3, 4)

    def test_reversed_preserves_length(self):
        line = Polyline((Point(0, 0), Point(3, 0), Point(3, 4)))
        assert line.reversed().length == line.length
        assert line.reversed().start == line.end


class TestPointAt:
    def test_endpoints(self):
        line = Polyline((Point(0, 0), Point(3, 0), Point(3, 4)))
        assert line.point_at(0) == Point(0, 0)
        assert line.point_at(7) == Point(3, 4)

    def test_clamping(self):
        line = Polyline((Point(0, 0), Point(1, 0)))
        assert line.point_at(-5) == Point(0, 0)
        assert line.point_at(50) == Point(1, 0)

    def test_within_first_segment(self):
        line = Polyline((Point(0, 0), Point(3, 0), Point(3, 4)))
        assert line.point_at(2) == Point(2, 0)

    def test_within_second_segment(self):
        line = Polyline((Point(0, 0), Point(3, 0), Point(3, 4)))
        assert line.point_at(5) == Point(3, 2)

    def test_exactly_at_vertex(self):
        line = Polyline((Point(0, 0), Point(3, 0), Point(3, 4)))
        assert line.point_at(3) == Point(3, 0)

    @given(vertex_lists, st.floats(min_value=0, max_value=1))
    def test_point_at_lies_on_some_segment(self, vertices, t):
        line = Polyline(tuple(vertices))
        p = line.point_at(t * line.length)
        best = min(seg.distance_to_point(p) for seg in line.segments())
        assert best < 1e-6


class TestProject:
    def test_project_onto_vertex(self):
        line = Polyline((Point(0, 0), Point(3, 0), Point(3, 4)))
        offset, closest = line.project(Point(3, 0))
        assert offset == pytest.approx(3.0)
        assert closest == Point(3, 0)

    def test_project_onto_second_segment(self):
        line = Polyline((Point(0, 0), Point(3, 0), Point(3, 4)))
        offset, closest = line.project(Point(5, 2))
        assert closest == Point(3, 2)
        assert offset == pytest.approx(5.0)

    @given(vertex_lists, points)
    def test_projection_round_trips_through_point_at(self, vertices, p):
        line = Polyline(tuple(vertices))
        offset, closest = line.project(p)
        reconstructed = line.point_at(offset)
        assert reconstructed.distance_to(closest) < 1e-6
