"""Page-access heatmaps over :class:`~repro.storage.buffer.BufferPool`.

The paper's cost model charges *page accesses*; the heatmap shows how
those accesses distribute over the page space of each structure — is
the adjacency store scanned uniformly, does the R-tree hammer its root
split, does the B+-tree's leaf chain stay cold?  Input is the per-page
``(hits, misses)`` map a pool collects (:meth:`BufferPool.
page_accesses`); output is a ranked table, a fixed-width ASCII
intensity strip (pages binned in id order), and a JSON-ready dict that
``repro heatmap --out`` writes for downstream tooling.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Mapping

#: Intensity ramp for the ASCII strip, coldest to hottest.
_RAMP = " .:-=+*#%@"


@dataclass(frozen=True, slots=True)
class PageHeat:
    """Access counts for one page."""

    page_id: int
    hits: int
    misses: int

    @property
    def accesses(self) -> int:
        return self.hits + self.misses


def page_heats(accesses: Mapping[int, tuple[int, int]]) -> list[PageHeat]:
    """Per-page heats in page-id order."""
    return [
        PageHeat(page_id=page_id, hits=hits, misses=misses)
        for page_id, (hits, misses) in sorted(accesses.items())
    ]


def hottest(heats: list[PageHeat], top: int = 10) -> list[PageHeat]:
    """The ``top`` most-accessed pages, heaviest first."""
    return sorted(heats, key=lambda h: (-h.accesses, h.page_id))[:top]


def bin_heats(
    heats: list[PageHeat], bins: int
) -> list[tuple[int, int, int, int]]:
    """Bin pages (in id order) into ``(lo, hi, accesses, misses)`` rows.

    Binning is over the *occupied id range*, so sparse page-id spaces
    (pagers allocate ids across structures from one disk) still render
    as a compact strip.
    """
    if not heats or bins < 1:
        return []
    lo_id = heats[0].page_id
    hi_id = heats[-1].page_id
    span = max(1, hi_id - lo_id + 1)
    width = max(1, -(-span // bins))  # ceil division
    rows: dict[int, list[int]] = {}
    for heat in heats:
        index = (heat.page_id - lo_id) // width
        row = rows.setdefault(index, [0, 0])
        row[0] += heat.accesses
        row[1] += heat.misses
    out = []
    for index in range(min(bins, -(-span // width))):
        accesses, misses = rows.get(index, (0, 0))
        lo = lo_id + index * width
        hi = min(hi_id, lo + width - 1)
        out.append((lo, hi, accesses, misses))
    return out


def render_strip(heats: list[PageHeat], width: int = 64) -> str:
    """A one-line ASCII intensity strip over the page-id range."""
    binned = bin_heats(heats, width)
    if not binned:
        return "(no page accesses)"
    peak = max(accesses for _, _, accesses, _ in binned)
    if peak == 0:
        return _RAMP[0] * len(binned)
    chars = []
    for _, _, accesses, _ in binned:
        # ceil-scale so any non-zero bin is visibly warmer than zero.
        level = -(-accesses * (len(_RAMP) - 1) // peak)
        chars.append(_RAMP[level])
    return "".join(chars)


def render_component(
    name: str,
    accesses: Mapping[int, tuple[int, int]],
    top: int = 8,
    width: int = 64,
) -> str:
    """Full text rendering for one buffer pool."""
    heats = page_heats(accesses)
    total = sum(h.accesses for h in heats)
    misses = sum(h.misses for h in heats)
    lines = [
        f"{name}: {len(heats)} pages touched, "
        f"{total} accesses ({misses} physical)",
    ]
    if not heats:
        return "\n".join(lines)
    lines.append(f"  [{render_strip(heats, width)}]")
    lines.append(
        f"  pages {heats[0].page_id}..{heats[-1].page_id} "
        f"(left to right), ramp '{_RAMP}'"
    )
    lines.append(f"  {'page':>8} {'accesses':>9} {'hits':>7} {'misses':>7}")
    for heat in hottest(heats, top):
        lines.append(
            f"  {heat.page_id:>8d} {heat.accesses:>9d} "
            f"{heat.hits:>7d} {heat.misses:>7d}"
        )
    return "\n".join(lines)


def heat_dict(
    components: Mapping[str, Mapping[int, tuple[int, int]]]
) -> dict[str, Any]:
    """JSON-ready export of several components' page heats."""
    out: dict[str, Any] = {}
    for name, accesses in components.items():
        heats = page_heats(accesses)
        out[name] = {
            "pages_touched": len(heats),
            "accesses": sum(h.accesses for h in heats),
            "physical_reads": sum(h.misses for h in heats),
            "pages": [
                {"page_id": h.page_id, "hits": h.hits, "misses": h.misses}
                for h in heats
            ],
        }
    return out
