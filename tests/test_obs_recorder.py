"""Flight recorder and stall watchdog: ring retention, dump contents,
deterministic stall detection, and the end-to-end blocked-query path
(watchdog flags it, the dump holds its live span tree + thread stacks).
"""

from __future__ import annotations

import json
import signal
import threading
import time

import pytest

from conftest import build_random_network, place_random_objects
from repro.core import Workspace
from repro.core.result import SkylineResult
from repro.core.stats import QueryStats
from repro.obs import tracing
from repro.obs.recorder import (
    FlightRecorder,
    InFlightTable,
    StallWatchdog,
    format_flight_record,
    install_signal_dump,
    latest_flight_record,
    load_flight_record,
    safe_span_dict,
    thread_stacks,
)
from repro.obs.tracing import Span
from repro.service import QueryService
from repro.service.service import SERVICE_ALGORITHMS


class TestInFlightTable:
    def test_register_deregister_roundtrip(self):
        table = InFlightTable()
        span = Span("request.LBC")
        table.register(1, "LBC", span)
        table.register(2, "CE", None)
        assert table.count() == 2
        snapshot = {e["request_id"]: e for e in table.snapshot()}
        assert snapshot[1]["algorithm"] == "LBC"
        assert snapshot[1]["trace_id"] == span.trace_id
        assert snapshot[1]["span"]["name"] == "request.LBC"
        assert snapshot[2]["trace_id"] is None
        assert "span" not in snapshot[2]
        table.deregister(1)
        assert table.count() == 1
        table.deregister(999)  # unknown ids are a no-op
        assert table.count() == 1


class TestStallWatchdog:
    def test_progress_resets_the_deadline(self):
        clock = [0.0]
        table = InFlightTable(clock=lambda: clock[0])
        watchdog = StallWatchdog(
            table, deadline_s=10.0, clock=lambda: clock[0]
        )
        span = Span("request.LBC")
        table.register(1, "LBC", span)
        assert watchdog.scan() == []  # baseline signal captured
        clock[0] = 5.0
        span.counts["nodes_settled"] = 5.0  # work happened
        assert watchdog.scan() == []
        clock[0] = 14.0  # 9s since last progress: under deadline
        assert watchdog.scan() == []
        clock[0] = 16.0  # 11s with a frozen counter set: stalled
        flagged = watchdog.scan()
        assert [e.request_id for e in flagged] == [1]
        assert flagged[0].stalled
        assert watchdog.stall_count == 1
        # One flag per query: later scans don't re-fire.
        clock[0] = 100.0
        assert watchdog.scan() == []
        assert watchdog.stall_count == 1

    def test_growing_span_tree_counts_as_progress(self):
        clock = [0.0]
        table = InFlightTable(clock=lambda: clock[0])
        watchdog = StallWatchdog(
            table, deadline_s=10.0, clock=lambda: clock[0]
        )
        root = Span("request.LBC")
        table.register(1, "LBC", root)
        watchdog.scan()
        for step in range(1, 5):
            clock[0] = step * 8.0  # each gap under the deadline
            Span("lbc.resolve", parent=root)  # tree keeps growing
            assert watchdog.scan() == []
        assert watchdog.stall_count == 0

    def test_on_stall_callback_fires_once_per_query(self):
        clock = [0.0]
        seen = []
        table = InFlightTable(clock=lambda: clock[0])
        watchdog = StallWatchdog(
            table,
            deadline_s=1.0,
            on_stall=seen.append,
            clock=lambda: clock[0],
        )
        table.register(7, "CE", Span("request.CE"))
        watchdog.scan()
        clock[0] = 5.0
        watchdog.scan()
        clock[0] = 50.0
        watchdog.scan()
        assert [e.request_id for e in seen] == [7]


class TestFlightRecorder:
    def test_ring_is_bounded_and_keeps_newest(self):
        recorder = FlightRecorder(ring=4)
        for i in range(10):
            span = Span("request.LBC")
            span.attributes["i"] = i
            recorder.record(span, outcome="completed", latency_s=0.001 * i)
        assert recorder.ring_size == 4
        kept = [e["span"].attributes["i"] for e in recorder.ring_entries()]
        assert kept == [6, 7, 8, 9]

    def test_dump_payload_contains_ring_inflight_and_stacks(self):
        table = InFlightTable()
        root = Span("request.LBC")
        child = Span("query.LBC", parent=root)
        child.counts["nodes_settled"] = 12.0
        table.register(3, "LBC", root)
        recorder = FlightRecorder(ring=8, inflight=table)
        done = Span("request.CE")
        done.finish()
        recorder.record(done, outcome="completed", latency_s=0.02)
        payload = recorder.dump_payload("test", extra={"note": "hi"})
        assert payload["flight_record"] == 1
        assert payload["reason"] == "test"
        assert payload["extra"] == {"note": "hi"}
        assert [e["trace"]["name"] for e in payload["ring"]] == ["request.CE"]
        (entry,) = payload["inflight"]
        assert entry["request_id"] == 3
        assert entry["span"]["name"] == "request.LBC"
        assert entry["span"]["children"][0]["name"] == "query.LBC"
        assert entry["span"]["children"][0]["counts"] == {
            "nodes_settled": 12.0
        }
        # The current thread's stack must be in the snapshot, and it
        # should mention this very test function.
        assert payload["threads"]
        joined = "\n".join(
            line for lines in payload["threads"].values() for line in lines
        )
        assert "dump_payload" in joined or "test_dump_payload" in joined

    def test_dump_writes_a_loadable_file(self, tmp_path):
        recorder = FlightRecorder(dump_dir=str(tmp_path))
        recorder.record(Span("request.LBC"), outcome="completed")
        path = recorder.dump("slow_query")
        assert path is not None and path.endswith(".json")
        payload = load_flight_record(path)
        assert payload["reason"] == "slow_query"
        assert latest_flight_record(str(tmp_path)) == path
        assert recorder.dump_count == 1

    def test_dump_rate_limited_unless_forced(self, tmp_path):
        clock = [0.0]
        recorder = FlightRecorder(
            dump_dir=str(tmp_path),
            min_dump_interval_s=5.0,
            clock=lambda: clock[0],
        )
        assert recorder.dump("error") is not None
        clock[0] = 1.0
        assert recorder.dump("error") is None  # burst suppressed
        assert recorder.suppressed_count == 1
        assert recorder.dump("stall", force=True) is not None
        clock[0] = 10.0
        assert recorder.dump("error") is not None
        assert recorder.dump_count == 3

    def test_dump_without_directory_is_a_noop(self):
        recorder = FlightRecorder()
        assert recorder.dump("error") is None
        assert recorder.dump_count == 0


class TestSafeSpanDict:
    def test_round_trips_a_normal_tree(self):
        root = Span("request.LBC")
        child = Span("query.LBC", parent=root)
        child.finish()
        root.finish()  # finished spans serialise identically every time
        assert safe_span_dict(root) == root.to_dict()

    def test_persistent_races_degrade_to_a_truncated_stub(self):
        class RacySpan(Span):
            def to_dict(self):
                raise RuntimeError("dictionary changed size during iteration")

        stub = safe_span_dict(RacySpan("request.LBC"))
        assert stub["truncated"] is True
        assert stub["name"] == "request.LBC"
        json.dumps(stub)


class TestFormatFlightRecord:
    def test_renders_all_sections(self):
        table = InFlightTable()
        root = Span("request.LBC")
        Span("query.LBC", parent=root).counts["nodes_settled"] = 4.0
        entry = table.register(5, "LBC", root)
        entry.stalled = True
        recorder = FlightRecorder(inflight=table)
        done = Span("request.CE")
        done.finish()
        recorder.record(done, outcome="completed", latency_s=0.5)
        text = format_flight_record(recorder.dump_payload("stall"))
        assert "reason=stall" in text
        assert "recent completed traces (1):" in text
        assert "request.CE" in text
        assert "in-flight queries (1):" in text
        assert "STALLED" in text
        assert "request.LBC" in text and "query.LBC" in text
        assert "thread stacks" in text

    def test_thread_section_can_be_omitted(self):
        recorder = FlightRecorder()
        text = format_flight_record(
            recorder.dump_payload("test"), include_threads=False
        )
        assert "thread stacks" not in text


class TestThreadStacks:
    def test_every_live_thread_is_captured(self):
        gate = threading.Event()
        ready = threading.Event()

        def parked():
            ready.set()
            gate.wait(timeout=10)

        thread = threading.Thread(
            target=parked, name="parked-thread", daemon=True
        )
        thread.start()
        ready.wait(timeout=5)
        try:
            stacks = thread_stacks()
            mine = [k for k in stacks if k.startswith("parked-thread-")]
            assert mine
            assert any("parked" in line for line in stacks[mine[0]])
        finally:
            gate.set()
            thread.join(timeout=5)


class BlockingAlgorithm:
    """A query that does a little work, then wedges until released."""

    name = "blocking"

    gate = threading.Event()
    started = threading.Event()

    def run(self, workspace, queries):
        with tracing.span("query.blocking") as root:
            tracing.record("nodes_settled", 1.0)
            type(self).started.set()
            type(self).gate.wait(timeout=30.0)
        stats = QueryStats(algorithm=self.name, trace_id=root.trace_id)
        return SkylineResult(points=[], stats=stats, trace=root)


@pytest.fixture
def blocked_service(tmp_path):
    network = build_random_network(60, 30, seed=11)
    objects = place_random_objects(network, 10, seed=12)
    workspace = Workspace.build(network, objects)
    BlockingAlgorithm.gate = threading.Event()
    BlockingAlgorithm.started = threading.Event()
    service = QueryService(
        workspace,
        workers=1,
        batch_window_s=0.0,
        algorithms={**SERVICE_ALGORITHMS, "blocking": BlockingAlgorithm},
        stall_deadline_s=0.2,
        diag_interval_s=0.02,
        flight_dir=str(tmp_path),
    )
    try:
        yield service, tmp_path
    finally:
        BlockingAlgorithm.gate.set()
        service.close()


class TestServiceStallDetection:
    def test_blocked_query_is_flagged_and_dumped(self, blocked_service):
        service, tmp_path = blocked_service
        network = service.workspace.network
        node = sorted(network.node_ids())[0]
        pending = service.submit(
            "blocking", [network.location_at_node(node)]
        )
        assert BlockingAlgorithm.started.wait(timeout=10.0)

        deadline = time.monotonic() + 10.0
        while time.monotonic() < deadline:
            if service.watchdog.stall_count >= 1:
                break
            time.sleep(0.02)
        assert service.watchdog.stall_count == 1
        assert service.inflight.stalled_count() == 1
        assert service.health_dict()["stalled"] == 1

        # The stall trigger wrote a flight record with the blocked
        # query's *live* span tree and every thread's stack.
        path = latest_flight_record(str(tmp_path))
        assert path is not None and "-stall" in path
        payload = load_flight_record(path)
        assert payload["reason"] == "stall"
        entry = next(
            e
            for e in payload["inflight"]
            if e["request_id"] == pending.request.request_id
        )
        assert entry["stalled"] is True
        assert entry["span"]["name"] == "request.blocking"
        child_names = [c["name"] for c in entry["span"]["children"]]
        assert "query.blocking" in child_names
        blocked = entry["span"]["children"][
            child_names.index("query.blocking")
        ]
        assert blocked["counts"]["nodes_settled"] == 1.0
        stacks = "\n".join(
            line
            for lines in payload["threads"].values()
            for line in lines
        )
        assert "BlockingAlgorithm" in stacks or "gate.wait" in stacks
        text = format_flight_record(payload)
        assert "STALLED" in text

        # Release the gate: the query completes normally afterwards.
        BlockingAlgorithm.gate.set()
        result = pending.result(timeout=10.0)
        assert result.stats.algorithm == "blocking"
        assert service.inflight.count() == 0


@pytest.mark.skipif(
    not hasattr(signal, "SIGUSR2"), reason="platform lacks SIGUSR2"
)
class TestSignalDump:
    def test_sigusr2_forces_a_dump(self, tmp_path):
        recorder = FlightRecorder(dump_dir=str(tmp_path))
        previous = signal.getsignal(signal.SIGUSR2)
        assert install_signal_dump(recorder)
        try:
            signal.raise_signal(signal.SIGUSR2)
            path = latest_flight_record(str(tmp_path))
            assert path is not None
            assert load_flight_record(path)["reason"] == "sigusr2"
        finally:
            signal.signal(signal.SIGUSR2, previous)
