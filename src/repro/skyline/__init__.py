"""Euclidean-space skyline algorithms (baselines and EDC's step 1).

* :mod:`repro.skyline.dominance` — the Pareto order, including the
  lower-bound-safe variant LBC relies on;
* :mod:`repro.skyline.bnl` — Block-Nested-Loops [4];
* :mod:`repro.skyline.sfs` — Sort-Filter-Skyline [5];
* :mod:`repro.skyline.bbs` — multi-source Branch-and-Bound Skyline over
  the R-tree (the paper's Section 4.2 construction).

The hot paths are block entry points over the columnar data plane
(:mod:`repro.columnar`); the scalar functions are thin views over them.
"""

from repro.skyline.bbs import (
    euclidean_skyline,
    euclidean_vector,
    euclidean_vectors_block,
    incremental_euclidean_skyline,
    mbr_lower_bound_vector,
)
from repro.skyline.bnl import bnl_skyline, bnl_skyline_items, bnl_skyline_multipass
from repro.skyline.dominance import (
    Vector,
    dominance_count,
    dominates,
    dominates_lower_bounds,
    dominates_or_equal,
    is_dominated_by_any,
    is_dominated_by_any_block,
    skyline_of,
    skyline_of_block,
    skyline_of_scalar,
)
from repro.skyline.sfs import sfs_skyline, sfs_skyline_block, sfs_skyline_progressive

__all__ = [
    "Vector",
    "bnl_skyline",
    "bnl_skyline_items",
    "bnl_skyline_multipass",
    "dominance_count",
    "dominates",
    "dominates_lower_bounds",
    "dominates_or_equal",
    "euclidean_skyline",
    "euclidean_vector",
    "euclidean_vectors_block",
    "incremental_euclidean_skyline",
    "is_dominated_by_any",
    "is_dominated_by_any_block",
    "mbr_lower_bound_vector",
    "sfs_skyline",
    "sfs_skyline_block",
    "sfs_skyline_progressive",
    "skyline_of",
    "skyline_of_block",
    "skyline_of_scalar",
]
