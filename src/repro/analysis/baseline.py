"""Findings baseline: a reviewed debt ledger.

A baseline file lets the CI gate fail on *new* findings only while an
existing violation is being paid down.  Entries are keyed by a content
fingerprint — ``sha1(rule_id | path | stripped source line | n)``
where ``n`` disambiguates identical lines in one file — so ordinary
edits elsewhere in the file (which shift line numbers) do not
invalidate the baseline, but editing the offending line itself does.

The repo's checked-in baseline is *empty* by design (see ISSUE/PR 4:
the tree lints clean); the mechanism exists for future migrations.
"""

from __future__ import annotations

import hashlib
import json
import os
from typing import Iterable

from repro.analysis.walker import Finding

VERSION = 1
DEFAULT_PATH = "lint-baseline.json"


def _source_line(lines_by_path: dict[str, list[str]], finding: Finding) -> str:
    lines = lines_by_path.get(finding.path, [])
    if 1 <= finding.line <= len(lines):
        return lines[finding.line - 1].strip()
    return ""


def fingerprints(
    findings: Iterable[Finding],
    lines_by_path: dict[str, list[str]],
) -> dict[Finding, str]:
    """Stable fingerprint per finding (order-independent)."""
    seen: dict[tuple[str, str, str], int] = {}
    out: dict[Finding, str] = {}
    for finding in sorted(findings, key=Finding.sort_key):
        content = _source_line(lines_by_path, finding)
        key = (finding.rule_id, _relpath(finding.path), content)
        counter = seen.get(key, 0)
        seen[key] = counter + 1
        digest = hashlib.sha1(
            "|".join((*key, str(counter))).encode("utf-8")
        ).hexdigest()
        out[finding] = digest
    return out


def _relpath(path: str) -> str:
    try:
        rel = os.path.relpath(path)
    except ValueError:  # pragma: no cover - cross-drive on win32
        return path
    return rel.replace(os.sep, "/")


def load(path: str) -> set[str]:
    """The fingerprints recorded in a baseline file (empty if absent)."""
    if not os.path.exists(path):
        return set()
    with open(path, encoding="utf-8") as handle:
        payload = json.load(handle)
    if payload.get("version") != VERSION:
        raise ValueError(
            f"unsupported baseline version {payload.get('version')!r} "
            f"in {path}; expected {VERSION}"
        )
    return set(payload.get("findings", {}))


def save(
    path: str,
    findings: Iterable[Finding],
    lines_by_path: dict[str, list[str]],
) -> int:
    """Write a baseline covering ``findings``; returns the entry count."""
    prints = fingerprints(findings, lines_by_path)
    entries = {
        digest: {
            "rule_id": finding.rule_id,
            "path": _relpath(finding.path),
            "line": finding.line,
            "message": finding.message,
        }
        for finding, digest in prints.items()
    }
    payload = {"version": VERSION, "findings": dict(sorted(entries.items()))}
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return len(entries)


def filter_new(
    findings: list[Finding],
    baseline_prints: set[str],
    lines_by_path: dict[str, list[str]],
) -> tuple[list[Finding], int]:
    """Split findings into (new, baselined-count)."""
    if not baseline_prints:
        return findings, 0
    prints = fingerprints(findings, lines_by_path)
    fresh = [
        finding
        for finding in findings
        if prints[finding] not in baseline_prints
    ]
    return fresh, len(findings) - len(fresh)
