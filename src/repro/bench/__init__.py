"""``repro.bench`` — the continuous-performance benchmark runner.

The paper's whole evaluation is a cost trajectory: pages read and nodes
settled for CE/EDC/LBC as network size, |Q| and density vary.  This
package makes that trajectory a *maintained artifact* instead of a
one-off table:

* :mod:`repro.bench.suite` — a named, versioned catalogue of workloads
  (algorithm x preset network x |Q| x warm/cold, plus a closed-loop
  serving workload);
* :mod:`repro.bench.runner` — executes a suite and emits a
  schema-versioned ``BENCH_<rev>.json`` holding **deterministic cost
  counters** (read off the tracing span tree, bit-identical run to
  run) and **advisory wall-time percentiles** (environment-dependent,
  never gated);
* :mod:`repro.bench.compare` — compares two artifacts: hard failures
  on deterministic-counter regressions, noise-tolerant warnings on
  timings.  CI runs every push against the committed
  ``benchmarks/baseline.json``.

Run it as ``repro bench`` or ``python -m repro.bench``.
"""

from repro.bench.compare import ComparisonReport, compare_artifacts, format_report
from repro.bench.runner import (
    ARTIFACT_SCHEMA,
    ARTIFACT_SCHEMA_VERSION,
    CounterDrift,
    default_artifact_name,
    run_suite,
    write_artifact,
)
from repro.bench.suite import SUITE_VERSION, SUITES, suite_workloads

__all__ = [
    "ARTIFACT_SCHEMA",
    "ARTIFACT_SCHEMA_VERSION",
    "ComparisonReport",
    "CounterDrift",
    "SUITES",
    "SUITE_VERSION",
    "compare_artifacts",
    "default_artifact_name",
    "format_report",
    "run_suite",
    "suite_workloads",
    "write_artifact",
]
