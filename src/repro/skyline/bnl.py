"""Block-Nested-Loops skyline (Börzsönyi, Kossmann, Stocker; ICDE 2001).

The paper's related work opens with BNL: the simplest correct skyline
algorithm, streaming the dataset against a window of incomparable
tuples.  We use it as the exhaustive reference and as the final
pair-wise comparison step of EDC (step 5), where the candidate set is
already small.

This in-memory variant uses an unbounded window (the window never
overflows, so no temp-file passes are needed); the ``window_size``
parameter exists to exercise the multi-pass behaviour in tests.
"""

from __future__ import annotations

from typing import Sequence, TypeVar

from repro.skyline.dominance import Vector, dominates

T = TypeVar("T")


def bnl_skyline(vectors: Sequence[Vector]) -> list[int]:
    """Indices of skyline members of ``vectors`` using one BNL pass."""
    window: list[int] = []
    for i, candidate in enumerate(vectors):
        dominated = False
        survivors: list[int] = []
        for j in window:
            if dominates(vectors[j], candidate):
                dominated = True
                survivors = window  # window unchanged
                break
            if not dominates(candidate, vectors[j]):
                survivors.append(j)
        if not dominated:
            survivors.append(i)
            window = survivors
        else:
            window = survivors
    return sorted(window)


def bnl_skyline_items(
    items: Sequence[T], key: "callable[[T], Vector]"
) -> list[T]:
    """Skyline of arbitrary items under a vector-valued ``key``."""
    vectors = [tuple(key(item)) for item in items]
    return [items[i] for i in bnl_skyline(vectors)]


def bnl_skyline_multipass(
    vectors: Sequence[Vector], window_size: int
) -> list[int]:
    """Multi-pass BNL with a bounded window.

    Tuples that fit neither verdict (not dominated, window full) spill
    to the next pass; a window tuple is reported only once it has been
    compared against every tuple of its pass, tracked with arrival
    timestamps as in the original algorithm.  Each pass streams its
    input in ascending component-sum order (the SFS presort), which
    guarantees the pass's minimum-sum tuple is a confirmed skyline
    point — strict progress, hence termination.
    """
    if window_size < 1:
        raise ValueError(f"window_size must be >= 1, got {window_size}")
    result: list[int] = []
    pending = sorted(range(len(vectors)), key=lambda i: (sum(vectors[i]), i))
    while pending:
        # Window entries carry the arrival position at which they were
        # inserted: a window tuple has been compared against every later
        # arrival, but never against overflow tuples that arrived first.
        window: list[tuple[int, int]] = []
        overflow: list[tuple[int, int]] = []
        for arrival, i in enumerate(pending):
            candidate = vectors[i]
            dominated = False
            survivors: list[tuple[int, int]] = []
            for entry in window:
                if dominates(vectors[entry[0]], candidate):
                    dominated = True
                    survivors = window
                    break
                if not dominates(candidate, vectors[entry[0]]):
                    survivors.append(entry)
            window = survivors
            if dominated:
                continue
            if len(window) < window_size:
                window.append((i, arrival))
            else:
                overflow.append((i, arrival))
        confirmed: list[int] = []
        deferred: list[int] = []
        for i, inserted_at in window:
            missed = any(
                o_arrival < inserted_at and dominates(vectors[o], vectors[i])
                for o, o_arrival in overflow
            )
            (deferred if missed else confirmed).append(i)
        result.extend(confirmed)
        # Deferred window tuples and overflow tuples go to the next pass,
        # minus anything the confirmed skyline already dominates.
        survivors_next = [
            i
            for i in deferred + [o for o, _ in overflow]
            if not any(dominates(vectors[j], vectors[i]) for j in result)
        ]
        pending = sorted(survivors_next, key=lambda i: (sum(vectors[i]), i))
    return sorted(result)
