"""Dominance — the Pareto order at the heart of every skyline query.

A vector ``a`` *dominates* ``b`` (minimisation convention, as in the
paper) when ``a[i] <= b[i]`` for every dimension and ``a[i] < b[i]``
for at least one.  Skyline = the set of vectors dominated by nobody.

Two extra notions matter for the road-network algorithms:

* **Lower-bound dominance** (:func:`dominates_lower_bounds`): LBC keeps
  only *lower bounds* of a candidate's distances.  Because a lower
  bound never exceeds the true value, ``s <= lb`` pointwise implies
  ``s <= true`` pointwise; strictness must however be certified on a
  dimension where it provably carries over to the true value.
* **Region dominance**: R-tree pruning compares a skyline vector
  against the vector of per-query *minimum* distances to an MBR — a
  pointwise lower bound over everything inside the subtree, so the same
  :func:`dominates_lower_bounds` test applies.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.columnar import kernels
from repro.columnar.store import VectorTable

Vector = Sequence[float]


def dominates(a: Vector, b: Vector) -> bool:
    """True if ``a`` dominates ``b`` (<= everywhere, < somewhere)."""
    if len(a) != len(b):
        raise ValueError(f"dimension mismatch: {len(a)} vs {len(b)}")
    strictly_less = False
    for ai, bi in zip(a, b):
        if ai > bi:
            return False
        if ai < bi:
            strictly_less = True
    return strictly_less


def dominates_or_equal(a: Vector, b: Vector) -> bool:
    """True if ``a <= b`` in every dimension (ties allowed everywhere)."""
    if len(a) != len(b):
        raise ValueError(f"dimension mismatch: {len(a)} vs {len(b)}")
    return all(ai <= bi for ai, bi in zip(a, b))


def dominates_lower_bounds(vector: Vector, bounds: Vector) -> bool:
    """Sound dominance test against a vector of *lower bounds*.

    ``bounds[i]`` is a lower bound of some unknown true value ``t[i]``.
    Returns True only when ``vector`` is guaranteed to dominate ``t``:
    ``vector[i] <= bounds[i]`` everywhere (hence ``<= t[i]``), and
    ``vector[i] < bounds[i]`` somewhere (hence ``< t[i]`` there).

    When this returns False the candidate might still be dominated —
    the caller must tighten the bounds and retry (exactly LBC's
    expand-one-step loop).  Once every bound is exact the test
    coincides with :func:`dominates`, so the loop terminates with the
    correct verdict.
    """
    if len(vector) != len(bounds):
        raise ValueError(f"dimension mismatch: {len(vector)} vs {len(bounds)}")
    strict = False
    for vi, lbi in zip(vector, bounds):
        if vi > lbi:
            return False
        if vi < lbi:
            strict = True
    return strict


def is_dominated_by_any(vector: Vector, others: Iterable[Vector]) -> bool:
    """True if any vector in ``others`` dominates ``vector``."""
    return any(dominates(other, vector) for other in others)


def is_dominated_by_any_block(
    block, count: int, width: int, vector: Vector, offset: int = 0
) -> bool:
    """Block form of :func:`is_dominated_by_any` over a flat buffer."""
    return kernels.is_dominated_by_any_block(block, count, width, vector, offset)


def skyline_of(vectors: Sequence[Vector]) -> list[int]:
    """Indices of the skyline members of ``vectors`` (ascending).

    Thin view over the columnar block kernel: the vectors are packed
    into a flat :class:`~repro.columnar.store.VectorTable` and filtered
    by :func:`repro.columnar.kernels.block_skyline`.  Semantics match
    :func:`skyline_of_scalar` exactly — duplicate vectors are all
    reported (none dominates its twin) and mixed widths raise.
    """
    if not vectors:
        return []
    if len(vectors[0]) == 0:
        # Zero-dimensional vectors cannot dominate; everything survives
        # (after the scalar width check against the first vector).
        for vector in vectors:
            if len(vector) != 0:
                raise ValueError(f"dimension mismatch: 0 vs {len(vector)}")
        return list(range(len(vectors)))
    table = VectorTable.from_vectors(vectors)
    return sorted(kernels.block_skyline(table.data, len(table), table.width))


def skyline_of_block(table: VectorTable) -> list[int]:
    """Skyline row indices of a column block, ascending."""
    return sorted(kernels.block_skyline(table.data, len(table), table.width))


def skyline_of_scalar(vectors: Sequence[Vector]) -> list[int]:
    """Indices of the skyline members of ``vectors`` (quadratic scan).

    The per-tuple reference implementation the columnar kernels are
    equivalence-tested against.  Duplicate vectors are all reported
    (none dominates its twin).
    """
    result: list[int] = []
    for i, candidate in enumerate(vectors):
        dominated = False
        for j, other in enumerate(vectors):
            if i != j and dominates(other, candidate):
                dominated = True
                break
        if not dominated:
            result.append(i)
    return result


def dominance_count(vectors: Sequence[Vector], target: Vector) -> int:
    """How many vectors dominate ``target`` (diagnostics/tests)."""
    return sum(1 for v in vectors if dominates(v, target))
