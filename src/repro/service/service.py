"""The concurrent query-serving front door.

A :class:`QueryService` turns one :class:`~repro.core.query.Workspace`
into a long-running server:

* **Admission control** — a bounded request queue.  When it is full,
  :meth:`submit` raises :class:`~repro.service.errors.Overloaded`
  immediately instead of queuing unboundedly; the shed is counted and
  surfaced in ``/statsz``.  Bounded queues are what keep tail latency
  finite under overload.
* **A worker pool** — N threads drain the queue.  Each worker takes
  one request, lingers for ``batch_window_s`` so co-arriving requests
  can join (group commit), then plans the drained slice with the
  :class:`~repro.service.batching.BatchPlanner`.
* **Batching with conflict isolation** — batches sharing query points
  with an in-flight batch wait their turn (the engine's pooled
  wavefronts are single-driver; see the concurrency contract in
  :mod:`repro.engine.engine`); disjoint batches run in parallel under
  the workspace's shared read lock.
* **Deadlines** — every request carries one (default
  ``default_timeout_s``); expired requests fail with
  :class:`~repro.service.errors.DeadlineExceeded` instead of occupying
  a worker.
* **Snapshot-isolated mutations** — :meth:`update_edge_length`,
  :meth:`add_object`, :meth:`remove_object` take the workspace's write
  lock, so they wait for in-flight queries, apply atomically, and
  invalidate the engine exactly once.

The service is transport-agnostic; :mod:`repro.service.http` puts a
JSON endpoint in front of it.
"""

from __future__ import annotations

import itertools
import threading
import time
from collections import deque
from typing import Callable, Mapping

from repro import __version__
from repro.core import ALL_ALGORITHMS, NaiveSkyline, Workspace
from repro.core.result import SkylineResult
from repro.network.graph import NetworkLocation
from repro.obs import (
    DEFAULT_LATENCY_BUCKETS,
    DEFAULT_WINDOWS,
    BurnWindow,
    EventLog,
    FlightRecorder,
    InFlightTable,
    Objective,
    SLOMonitor,
    SlowQueryLog,
    Span,
    StallWatchdog,
    Tracer,
    histogram_good_total,
    wide_event,
)
from repro.obs import tracing
from repro.insight import DIGEST_QUANTILES, InsightHub
from repro.service.batching import BatchPlanner, ServiceRequest, execute_plan
from repro.service.errors import (
    BadRequest,
    DeadlineExceeded,
    Overloaded,
    ServiceClosed,
)
from repro.service.metrics import LatencyRecorder

SERVICE_ALGORITHMS: Mapping[str, type] = {
    cls.name: cls for cls in (*ALL_ALGORITHMS, NaiveSkyline)
}

DEFAULT_WORKERS = 4
DEFAULT_QUEUE_LIMIT = 64
DEFAULT_TIMEOUT_S = 30.0
DEFAULT_MAX_BATCH = 8
DEFAULT_BATCH_WINDOW_S = 0.002
DEFAULT_SLOW_THRESHOLD_S = 0.5
BATCH_SIZE_BUCKETS = (1.0, 2.0, 4.0, 8.0, 16.0, 32.0)
DEFAULT_FLIGHT_RING = 64
DEFAULT_DIAG_INTERVAL_S = 0.25
DEFAULT_SLO_OBSERVE_INTERVAL_S = 5.0
DEFAULT_SLO_LATENCY_TARGET = 0.99
DEFAULT_SLO_LATENCY_THRESHOLD_S = 0.25
DEFAULT_SLO_AVAILABILITY_TARGET = 0.999


class PendingQuery:
    """A submitted request's future answer."""

    def __init__(self, request: ServiceRequest) -> None:
        self.request = request
        self._event = threading.Event()
        self._result: SkylineResult | None = None
        self._error: BaseException | None = None

    def _fulfill(self, outcome) -> None:
        if isinstance(outcome, BaseException):
            self._error = outcome
        else:
            self._result = outcome
        self._event.set()

    def done(self) -> bool:
        return self._event.is_set()

    def result(self, timeout: float | None = None) -> SkylineResult:
        """Block until the answer (or typed failure) arrives."""
        if not self._event.wait(timeout):
            raise TimeoutError(
                f"request {self.request.request_id} still pending"
            )
        if self._error is not None:
            raise self._error
        assert self._result is not None
        return self._result


class QueryService:
    """Concurrent skyline-query serving over one workspace."""

    def __init__(
        self,
        workspace: Workspace,
        *,
        workers: int = DEFAULT_WORKERS,
        queue_limit: int = DEFAULT_QUEUE_LIMIT,
        default_timeout_s: float | None = DEFAULT_TIMEOUT_S,
        max_batch: int = DEFAULT_MAX_BATCH,
        batch_window_s: float = DEFAULT_BATCH_WINDOW_S,
        algorithms: Mapping[str, type] | None = None,
        slow_threshold_s: float = DEFAULT_SLOW_THRESHOLD_S,
        trace_retention: int = 128,
        trace_export_dir: str | None = None,
        event_log: EventLog | None = None,
        event_log_path: str | None = None,
        flight_dir: str | None = None,
        flight_ring: int = DEFAULT_FLIGHT_RING,
        stall_deadline_s: float | None = None,
        diag_interval_s: float = DEFAULT_DIAG_INTERVAL_S,
        slo_windows: tuple[BurnWindow, ...] = DEFAULT_WINDOWS,
        slo_latency_target: float = DEFAULT_SLO_LATENCY_TARGET,
        slo_latency_threshold_s: float = DEFAULT_SLO_LATENCY_THRESHOLD_S,
        slo_availability_target: float = DEFAULT_SLO_AVAILABILITY_TARGET,
        slo_observe_interval_s: float = DEFAULT_SLO_OBSERVE_INTERVAL_S,
        insight_enabled: bool = True,
    ) -> None:
        if workers < 1:
            raise ValueError(f"need at least one worker, got {workers}")
        if queue_limit < 1:
            raise ValueError(f"queue limit must be >= 1, got {queue_limit}")
        if max_batch < 1:
            raise ValueError(f"max batch must be >= 1, got {max_batch}")
        self.workspace = workspace
        self.queue_limit = queue_limit
        self.default_timeout_s = default_timeout_s
        self.max_batch = max_batch
        self.batch_window_s = batch_window_s
        self.algorithms = dict(algorithms or SERVICE_ALGORITHMS)

        self._planner = BatchPlanner()
        self._cond = threading.Condition()
        self._queue: deque[PendingQuery] = deque()
        self._active_keys: set = set()
        self._paused = False
        self._closed = False
        self._ids = itertools.count(1)

        # Counters (guarded by _cond's lock).
        self._submitted = 0
        self._completed = 0
        self._failed = 0
        self._timed_out = 0
        self._shed = 0
        self._deduped = 0
        self._mutations = 0
        self._batches = 0
        self._batched_requests = 0
        self._busy_workers = 0

        self.latency = LatencyRecorder()
        self.tracer = Tracer(
            retention=trace_retention, export_dir=trace_export_dir
        )
        self.slow_queries = SlowQueryLog(threshold_s=slow_threshold_s)

        # Diagnostics plane: wide events, flight recorder, watchdog, SLO
        # monitor.  The service owns their lifecycle (close() tears them
        # down) even when an EventLog instance is passed in.
        if event_log is None and event_log_path is not None:
            event_log = EventLog(event_log_path)
        self.events = event_log
        self.inflight = InFlightTable()
        self.recorder = FlightRecorder(
            ring=flight_ring, dump_dir=flight_dir, inflight=self.inflight
        )
        self.watchdog = (
            StallWatchdog(
                self.inflight,
                deadline_s=stall_deadline_s,
                on_stall=self._on_stall,
            )
            if stall_deadline_s is not None
            else None
        )
        self.slow_threshold_s = slow_threshold_s
        self.slo = SLOMonitor(windows=slo_windows)
        self._slo_latency_threshold_s = slo_latency_threshold_s

        # Insight plane: rolling per-cohort latency/settled/page-miss
        # digests, served at /insightz and bridged into /metricsz.
        self.insight = (
            InsightHub(on_new_cohort=self._bridge_insight_cohort)
            if insight_enabled
            else None
        )

        # The service shares the workspace's registry so one /metricsz
        # scrape covers the whole stack: service -> engine -> buffers.
        self.metrics = workspace.metrics
        self._register_metrics()
        self.slo.add_objective(
            Objective(
                "latency",
                target=slo_latency_target,
                threshold_s=slo_latency_threshold_s,
                description=(
                    f"{slo_latency_target:.0%} of queries finish within "
                    f"{slo_latency_threshold_s * 1e3:.0f}ms"
                ),
            ),
            self._latency_good_total,
        )
        self.slo.add_objective(
            Objective(
                "availability",
                target=slo_availability_target,
                description=(
                    f"{slo_availability_target:.1%} of finished queries "
                    "succeed"
                ),
            ),
            self._availability_good_total,
        )
        self._register_slo_metrics()
        self._started_monotonic = time.monotonic()
        self._started_wall = time.time()

        self._threads = [
            threading.Thread(
                target=self._worker_loop, name=f"repro-serve-{i}", daemon=True
            )
            for i in range(workers)
        ]
        for thread in self._threads:
            thread.start()
        self._diag_stop = threading.Event()
        self._diag_interval_s = diag_interval_s
        self._slo_observe_interval_s = slo_observe_interval_s
        self._diag_thread = threading.Thread(
            target=self._diag_loop, name="repro-diag", daemon=True
        )
        self._diag_thread.start()

    def _register_metrics(self) -> None:
        """Expose the service's counters on the shared registry.

        Everything already counted under ``_cond`` is bridged with
        scrape-time callbacks (zero hot-path cost, no double
        bookkeeping); only the two histograms record inline, in
        :meth:`_finish` and :meth:`_process` respectively.
        """
        registry = self.metrics
        outcomes = registry.counter(
            "repro_service_requests_total",
            "Requests by lifecycle event (submitted counts admissions).",
            labels=("outcome",),
        )
        for outcome, reader in (
            ("submitted", lambda: float(self._submitted)),
            ("completed", lambda: float(self._completed)),
            ("failed", lambda: float(self._failed)),
            ("timed_out", lambda: float(self._timed_out)),
            ("shed", lambda: float(self._shed)),
            ("deduped", lambda: float(self._deduped)),
        ):
            outcomes.attach_callback(reader, outcome=outcome)
        registry.register_callback(
            "repro_service_queue_depth",
            lambda: float(len(self._queue)),
            kind="gauge",
            help_text="Requests admitted but not yet claimed by a worker.",
        )
        registry.register_callback(
            "repro_service_active_keys",
            lambda: float(len(self._active_keys)),
            kind="gauge",
            help_text="Query-point keys locked by in-flight batches.",
        )
        registry.register_callback(
            "repro_service_batches_total",
            lambda: float(self._batches),
            kind="counter",
            help_text="Batch plans executed.",
        )
        registry.register_callback(
            "repro_service_mutations_total",
            lambda: float(self._mutations),
            kind="counter",
            help_text="Workspace mutations applied under the write lock.",
        )
        registry.register_callback(
            "repro_service_slow_queries_total",
            lambda: float(self.slow_queries.slow_count),
            kind="counter",
            help_text="Completed requests over the slow-query threshold.",
        )
        self._latency_hist = registry.histogram(
            "repro_service_request_latency_seconds",
            "End-to-end request latency, admission to completion.",
            buckets=DEFAULT_LATENCY_BUCKETS,
        ).labels()
        self._batch_size_hist = registry.histogram(
            "repro_service_batch_size",
            "Requests per executed batch plan.",
            buckets=BATCH_SIZE_BUCKETS,
        ).labels()
        registry.register_callback(
            "repro_service_inflight",
            lambda: float(self.inflight.count()),
            kind="gauge",
            help_text="Queries admitted but not yet finished.",
        )
        registry.register_callback(
            "repro_service_stalls_total",
            lambda: float(
                self.watchdog.stall_count if self.watchdog else 0
            ),
            kind="counter",
            help_text="In-flight queries flagged stalled by the watchdog.",
        )
        registry.register_callback(
            "repro_service_flight_dumps_total",
            lambda: float(self.recorder.dump_count),
            kind="counter",
            help_text="Flight-record dumps written to disk.",
        )
        if self.events is not None:
            events = registry.counter(
                "repro_service_events_total",
                "Wide-event log lifecycle accounting.",
                labels=("event",),
            )
            for label, reader in (
                ("emitted", lambda: float(self.events.emitted)),
                ("written", lambda: float(self.events.written)),
                ("dropped", lambda: float(self.events.dropped)),
                ("rotated", lambda: float(self.events.rotations)),
            ):
                events.attach_callback(reader, event=label)
            registry.register_callback(
                "repro_event_log_queue_depth",
                lambda: float(self.events.queue_depth),
                kind="gauge",
                help_text="Wide events enqueued but not yet written "
                "(the writer's bounded queue; sustained depth precedes "
                "drops).",
            )
        if self.insight is not None:
            self._insight_latency_family = registry.gauge(
                "repro_insight_latency_seconds",
                "Rolling per-cohort latency quantiles from the insight "
                "hub's mergeable sketches (relative error alpha; see "
                "/insightz).",
                labels=("cohort", "quantile"),
            )
            self._insight_queries_family = registry.counter(
                "repro_insight_queries_total",
                "Finished queries folded into each insight cohort.",
                labels=("cohort",),
            )

    def _register_slo_metrics(self) -> None:
        """One long-window burn-rate gauge per objective (scrape-time)."""
        registry = self.metrics
        long_s = self.slo.windows[0].long_s
        for objective in self.slo.objectives():
            registry.register_callback(
                "repro_slo_burn_rate",
                lambda name=objective.name: self.slo.burn_rate(name, long_s),
                kind="gauge",
                help_text="Error-budget burn rate over the shortest "
                "long window (1.0 spends the budget exactly).",
                objective=objective.name,
            )

    # -- diagnostics-plane sources and triggers ------------------------

    def _latency_good_total(self) -> tuple[float, float]:
        """Cumulative (within-threshold, all) latency observations."""
        return histogram_good_total(
            self._latency_hist, self._slo_latency_threshold_s
        )

    def _availability_good_total(self) -> tuple[float, float]:
        """Cumulative (succeeded, finished) request counts."""
        with self._cond:
            good = self._completed
            total = self._completed + self._failed + self._timed_out
        return float(good), float(total)

    def _bridge_insight_cohort(self, key: str) -> None:
        """First sight of a cohort: attach its /metricsz callbacks.

        Runs once per cohort (cardinality is bounded by the |Q|
        bucketing), off the hub's lock; scrapes read the hub directly.
        """
        self._insight_queries_family.attach_callback(
            lambda k=key: float(self.insight.cohort_count_of(k)), cohort=key
        )
        for q in DIGEST_QUANTILES:
            self._insight_latency_family.attach_callback(
                lambda k=key, q=q: self.insight.latency_quantile(k, q),
                cohort=key,
                quantile=f"{q:g}",
            )

    def insight_report(self) -> dict:
        """The ``/insightz`` payload: live per-cohort rolling digests."""
        if self.insight is None:
            return {"enabled": False}
        return self.insight.report()

    def _on_stall(self, entry) -> None:
        """Watchdog trigger: one forced flight dump per stalled query."""
        self.recorder.dump(
            "stall",
            extra={
                "request_id": entry.request_id,
                "algorithm": entry.algorithm,
                "age_s": round(entry.age_s(time.monotonic()), 3),
            },
            force=True,
        )

    def _diag_loop(self) -> None:
        """Background cadence for the watchdog and the SLO monitor."""
        next_slo = time.monotonic() + self._slo_observe_interval_s
        while not self._diag_stop.wait(self._diag_interval_s):
            if self.watchdog is not None:
                self.watchdog.scan()
            now = time.monotonic()
            if now >= next_slo:
                self.slo.observe()
                next_slo = now + self._slo_observe_interval_s

    # ------------------------------------------------------------------
    # Client surface
    # ------------------------------------------------------------------
    def submit(
        self,
        algorithm: str,
        queries: list[NetworkLocation],
        timeout_s: float | None = None,
        trace_id: str | None = None,
    ) -> PendingQuery:
        """Admit one request, or raise a typed rejection immediately.

        ``trace_id`` (optional, client-supplied) overrides the root
        span's generated id so the whole tree — and every event, slow
        record and flight dump derived from it — correlates with the
        caller's own trace.
        """
        if algorithm not in self.algorithms:
            raise BadRequest(
                f"unknown algorithm {algorithm!r}; "
                f"choose from {sorted(self.algorithms)}"
            )
        if not queries:
            raise BadRequest("a skyline query needs at least one query point")
        timeout_s = self.default_timeout_s if timeout_s is None else timeout_s
        now = time.monotonic()
        request = ServiceRequest(
            request_id=next(self._ids),
            algorithm=algorithm,
            queries=list(queries),
            deadline=None if timeout_s is None else now + timeout_s,
            enqueued_at=now,
        )
        request.span = Span(
            f"request.{algorithm}",
            algorithm=algorithm,
            request_id=request.request_id,
            query_count=len(queries),
        )
        if trace_id:
            # Children copy the parent's trace id at creation and none
            # exist yet, so the override propagates to the whole tree.
            request.span.trace_id = trace_id
        pending = PendingQuery(request)
        with self._cond:
            if self._closed:
                raise ServiceClosed("service is shut down")
            if len(self._queue) >= self.queue_limit:
                self._shed += 1
                raise Overloaded(len(self._queue), self.queue_limit)
            self._queue.append(pending)
            self._submitted += 1
            self._cond.notify()
        self.inflight.register(request.request_id, algorithm, request.span)
        return pending

    def query(
        self,
        algorithm: str,
        queries: list[NetworkLocation],
        timeout_s: float | None = None,
        trace_id: str | None = None,
    ) -> SkylineResult:
        """Submit and block for the answer (closed-loop clients)."""
        pending = self.submit(
            algorithm, queries, timeout_s=timeout_s, trace_id=trace_id
        )
        # The worker enforces the deadline; the extra margin here only
        # guards against a wedged service.
        wait = None
        if pending.request.deadline is not None:
            wait = max(0.0, pending.request.deadline - time.monotonic()) + 30.0
        return pending.result(timeout=wait)

    # ------------------------------------------------------------------
    # Mutations (snapshot-isolated writers)
    # ------------------------------------------------------------------
    def mutate(self, fn: Callable[[Workspace], object]):
        """Run an arbitrary mutation under the workspace's write lock."""
        with self.workspace.mutating() as ws:
            outcome = fn(ws)
        with self._cond:
            self._mutations += 1
        return outcome

    def update_edge_length(self, edge_id: int, length: float) -> None:
        self.mutate(lambda ws: ws.update_edge_length(edge_id, length))

    def add_object(self, obj) -> None:
        self.mutate(lambda ws: ws.add_object(obj))

    def remove_object(self, object_id: int) -> None:
        self.mutate(lambda ws: ws.remove_object(object_id))

    # ------------------------------------------------------------------
    # Worker machinery
    # ------------------------------------------------------------------
    def _worker_loop(self) -> None:
        while True:
            with self._cond:
                while (not self._queue or self._paused) and not self._closed:
                    self._cond.wait()
                if self._closed and not self._queue:
                    return
                batch = [self._queue.popleft()]
            if self.batch_window_s > 0.0 and self.max_batch > 1:
                # Group commit: give co-arriving requests one short
                # window to join this batch.
                time.sleep(self.batch_window_s)
            with self._cond:
                while self._queue and len(batch) < self.max_batch:
                    batch.append(self._queue.popleft())
                self._busy_workers += 1
            try:
                self._process(batch)
            finally:
                with self._cond:
                    self._busy_workers -= 1

    def _process(self, batch: list[PendingQuery]) -> None:
        now = time.monotonic()
        live: list[PendingQuery] = []
        for pending in batch:
            deadline = pending.request.deadline
            if deadline is not None and now > deadline:
                self._finish(
                    pending,
                    DeadlineExceeded(deadline - pending.request.enqueued_at),
                )
            else:
                live.append(pending)
        if not live:
            return
        by_id = {p.request.request_id: p for p in live}
        plans = self._planner.plan([p.request for p in live])
        for plan in plans:
            keys = plan.key_union()
            self._acquire_keys(keys)
            try:
                outcomes = execute_plan(self.workspace, plan, self.algorithms)
            except BaseException as exc:
                # Planner/lock failures fail the whole plan, typed.
                outcomes = {
                    rid: exc
                    for unit in plan.units
                    for rid in (r.request_id for r in unit.requests)
                }
            finally:
                self._release_keys(keys)
            with self._cond:
                self._batches += 1
                self._batched_requests += plan.request_count
                self._deduped += plan.request_count - len(plan.units)
                batch_id = self._batches
            self._batch_size_hist.observe(float(plan.request_count))
            for request_id, outcome in outcomes.items():
                self._finish(by_id[request_id], outcome, batch_id=batch_id)

    def _finish(
        self, pending: PendingQuery, outcome, batch_id: int | None = None
    ) -> None:
        request = pending.request
        self.inflight.deregister(request.request_id)
        with self._cond:
            if isinstance(outcome, DeadlineExceeded):
                self._timed_out += 1
            elif isinstance(outcome, BaseException):
                self._failed += 1
            else:
                self._completed += 1
        span = request.span
        latency_s = time.monotonic() - request.enqueued_at
        if not isinstance(outcome, BaseException):
            self.latency.record(latency_s)
            self._latency_hist.observe(latency_s)
            if span is not None:
                self.slow_queries.offer(
                    request_id=request.request_id,
                    algorithm=request.algorithm,
                    latency_s=latency_s,
                    # Second clock: the span's own monotonic duration —
                    # execution time without queueing, so a slow record
                    # shows *where* the latency lived.
                    span_duration_s=span.duration_s,
                    query_nodes=[
                        q.node_id if q.is_node else [q.edge_id, q.offset]
                        for q in request.queries
                    ],
                    trace_id=span.trace_id,
                    counters=span.totals(),
                )
        if span is not None:
            span.attributes["outcome"] = (
                type(outcome).__name__
                if isinstance(outcome, BaseException)
                else "ok"
            )
            self.tracer.finish(span)
        self._emit_diagnostics(request, outcome, latency_s, batch_id)
        pending._fulfill(outcome)

    def _emit_diagnostics(
        self, request, outcome, latency_s: float, batch_id: int | None
    ) -> None:
        """Wide event + flight-recorder ring entry + dump triggers."""
        span = request.span
        if isinstance(outcome, DeadlineExceeded):
            label = "timed_out"
        elif isinstance(outcome, BaseException):
            label = "failed"
        else:
            label = "completed"
        if isinstance(outcome, BaseException):
            stats = None
            counters = (
                {
                    k: v
                    for k, v in span.totals().items()
                    if isinstance(v, (int, float))
                }
                if span is not None
                else {}
            )
            error = f"{type(outcome).__name__}: {outcome}"
        else:
            # The same QueryStats object the client response
            # carries — event-vs-stats reconciliation is exact by
            # construction, not by parallel bookkeeping.
            stats = outcome.stats
            counters = stats.counter_fields()
            error = None
        if self.insight is not None:
            # Same cohort vocabulary and same counters the wide event
            # carries, so live /insightz digests and offline analysis
            # of the event log describe the same populations.
            self.insight.observe(
                algorithm=request.algorithm,
                backend=stats.distance_backend if stats is not None else "",
                query_count=len(request.queries),
                outcome=label,
                latency_s=latency_s,
                counters=counters,
            )
        if self.events is not None:
            self.events.emit(
                wide_event(
                    request_id=request.request_id,
                    algorithm=request.algorithm,
                    outcome=label,
                    trace_id=span.trace_id if span is not None else None,
                    latency_s=latency_s,
                    span_duration_s=(
                        span.duration_s if span is not None else 0.0
                    ),
                    batch_id=batch_id,
                    engine_backend=(
                        stats.distance_backend if stats is not None else ""
                    ),
                    query_count=len(request.queries),
                    query_nodes=[
                        q.node_id if q.is_node else [q.edge_id, q.offset]
                        for q in request.queries
                    ],
                    skyline_count=(
                        stats.skyline_count if stats is not None else 0
                    ),
                    candidate_count=(
                        stats.candidate_count if stats is not None else 0
                    ),
                    counters=counters,
                    error=error,
                )
            )
        if span is not None:
            self.recorder.record(span, outcome=label, latency_s=latency_s)
        if label == "failed":
            self.recorder.dump(
                "error", extra={"request_id": request.request_id}
            )
        elif label == "completed" and latency_s >= self.slow_threshold_s:
            self.recorder.dump(
                "slow_query",
                extra={
                    "request_id": request.request_id,
                    "latency_s": round(latency_s, 6),
                },
            )

    def _acquire_keys(self, keys: frozenset) -> None:
        with self._cond:
            while keys & self._active_keys:
                self._cond.wait()
            self._active_keys |= keys

    def _release_keys(self, keys: frozenset) -> None:
        with self._cond:
            self._active_keys -= keys
            self._cond.notify_all()

    # ------------------------------------------------------------------
    # Operations
    # ------------------------------------------------------------------
    def pause(self) -> None:
        """Stop dequeuing (submissions still admitted); for tests/ops."""
        with self._cond:
            self._paused = True

    def resume(self) -> None:
        with self._cond:
            self._paused = False
            self._cond.notify_all()

    def queue_depth(self) -> int:
        with self._cond:
            return len(self._queue)

    def close(self, timeout_s: float = 10.0) -> None:
        """Drain queued requests, stop the workers, reject stragglers."""
        with self._cond:
            if self._closed:
                return
            self._closed = True
            self._paused = False
            self._cond.notify_all()
        for thread in self._threads:
            thread.join(timeout=timeout_s)
        # Anything still queued after the drain window is rejected.
        with self._cond:
            leftovers = list(self._queue)
            self._queue.clear()
        for pending in leftovers:
            self._finish(pending, ServiceClosed("service is shut down"))
        self._diag_stop.set()
        self._diag_thread.join(timeout=timeout_s)
        if self.events is not None:
            self.events.close(timeout=timeout_s)

    def __enter__(self) -> "QueryService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def stats_dict(self) -> dict:
        """The ``/statsz`` payload: queue, latency, batch and cache state."""
        with self._cond:
            queue_block = {
                "depth": len(self._queue),
                "limit": self.queue_limit,
                "shed": self._shed,
                "active_keys": len(self._active_keys),
                "paused": self._paused,
            }
            requests_block = {
                "submitted": self._submitted,
                "completed": self._completed,
                "failed": self._failed,
                "timed_out": self._timed_out,
                "deduped": self._deduped,
                "mutations": self._mutations,
            }
            batches = self._batches
            batched_requests = self._batched_requests
        batch_block = {
            "executed": batches,
            "requests_batched": batched_requests,
            "mean_batch_size": (
                round(batched_requests / batches, 3) if batches else 0.0
            ),
        }
        ws = self.workspace
        buffers = {"network_physical_reads": ws.network_pages_read(),
                   "index_physical_reads": ws.index_pages_read(),
                   "middle_physical_reads": ws.middle_pages_read()}
        if ws.store is not None:
            buffers["network_logical_reads"] = ws.store.stats.logical_reads
            buffers["network_hit_ratio"] = round(ws.store.stats.hit_ratio, 4)
        return {
            "uptime_s": round(time.monotonic() - self._started_monotonic, 3),
            "started_unix": round(self._started_wall, 3),
            "workers": len(self._threads),
            "queue": queue_block,
            "requests": requests_block,
            "latency_s": self.latency.summary(),
            "batches": batch_block,
            "engine": ws.engine.cache_info() if ws.engine else {},
            "engine_nodes_settled": (
                ws.engine.nodes_settled() if ws.engine else 0
            ),
            "buffers": buffers,
            "slow_queries": {
                "threshold_s": self.slow_queries.threshold_s,
                "count": self.slow_queries.slow_count,
                "retained": len(self.slow_queries.records()),
            },
            "workspace_version": ws.version,
            "algorithms": sorted(self.algorithms),
            "inflight": self.inflight.count(),
            "stalls": self.watchdog.stall_count if self.watchdog else 0,
            "events": (
                self.events.stats() if self.events is not None else None
            ),
            "flight_recorder": self.recorder.stats(),
        }

    def health_dict(self) -> dict:
        """The enriched ``/healthz`` payload: one readiness signal for
        load balancers and the watchdog alike."""
        with self._cond:
            depth = len(self._queue)
            busy = self._busy_workers
            closed = self._closed
        workers = len(self._threads)
        return {
            "status": "closed" if closed else "ok",
            "version": __version__,
            "uptime_s": round(time.monotonic() - self._started_monotonic, 3),
            "inflight": self.inflight.count(),
            "stalled": self.inflight.stalled_count(),
            "queue": {"depth": depth, "limit": self.queue_limit},
            "workers": {
                "total": workers,
                "busy": busy,
                "saturation": round(busy / workers, 3) if workers else 0.0,
            },
        }

    def debug_dict(self) -> dict:
        """The ``/debugz`` payload: live in-flight span trees plus
        queue/pool/diagnostics state, serialised race-tolerantly."""
        with self._cond:
            queue_block = {
                "depth": len(self._queue),
                "limit": self.queue_limit,
                "active_keys": sorted(
                    str(key) for key in self._active_keys
                ),
                "paused": self._paused,
            }
            busy = self._busy_workers
        active = {
            str(ident): {
                "name": node.name,
                "trace_id": node.trace_id,
                "path": list(node.path()),
            }
            for ident, node in tracing.active_spans().items()
        }
        return {
            "inflight": self.inflight.snapshot(with_span=True),
            "queue": queue_block,
            "workers": {"total": len(self._threads), "busy": busy},
            "active_by_thread": active,
            "flight_recorder": self.recorder.stats(),
            "events": (
                self.events.stats() if self.events is not None else None
            ),
            "watchdog": (
                {
                    "deadline_s": self.watchdog.deadline_s,
                    "stalls": self.watchdog.stall_count,
                }
                if self.watchdog is not None
                else None
            ),
        }

    def slo_report(self) -> dict:
        """The ``/sloz`` payload: every objective's burn-rate verdict."""
        return self.slo.report()
