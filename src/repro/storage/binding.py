"""Binding in-memory tree nodes to simulated disk pages.

The indexes in :mod:`repro.index` are ordinary linked node structures;
what makes them "disk-resident" for cost purposes is a :class:`NodePager`
that assigns one page per node and routes every node visit through an
LRU :class:`~repro.storage.buffer.BufferPool`.  Structures without a
pager attached simply run without I/O accounting (handy in unit tests).
"""

from __future__ import annotations

from typing import Hashable

from repro.storage.buffer import DEFAULT_BUFFER_BYTES, BufferPool
from repro.storage.disk import DiskManager
from repro.storage.page import DEFAULT_PAGE_SIZE
from repro.storage.stats import IOStats


class NodePager:
    """Maps node keys to simulated pages and charges accesses to a pool."""

    def __init__(
        self,
        disk: DiskManager | None = None,
        pool: BufferPool | None = None,
        buffer_bytes: int = DEFAULT_BUFFER_BYTES,
        page_size: int = DEFAULT_PAGE_SIZE,
        stats: IOStats | None = None,
        policy: str = "lru",
        component: str | None = None,
    ) -> None:
        self.disk = disk if disk is not None else DiskManager(page_size=page_size)
        if pool is None:
            pool = BufferPool(
                self.disk,
                capacity_bytes=buffer_bytes,
                stats=stats,
                policy=policy,
                component=component,
            )
        self.pool = pool
        self._page_of: dict[Hashable, int] = {}

    @property
    def stats(self) -> IOStats:
        return self.pool.stats

    def register(self, node_key: Hashable) -> int:
        """Allocate (or look up) the page backing ``node_key``."""
        page_id = self._page_of.get(node_key)
        if page_id is None:
            page_id = self.disk.allocate().page_id
            self._page_of[node_key] = page_id
        return page_id

    def touch(self, node_key: Hashable) -> None:
        """Charge one page access for visiting ``node_key``."""
        page_id = self.register(node_key)
        self.pool.fetch(page_id)

    def forget(self, node_key: Hashable) -> None:
        """Drop the mapping for a deallocated node (page stays on disk)."""
        self._page_of.pop(node_key, None)

    def page_count(self) -> int:
        """Pages allocated so far."""
        return self.disk.page_count
