"""EDC — the Euclidean Distance Constraint algorithm (Section 4.2).

EDC exploits space duality: query points and objects live both in
Euclidean space (cheap, indexed by the R-tree) and in network space
(expensive, distances via A*).  Its five steps:

1. retrieve the multi-source **Euclidean** skyline (BBS over the R-tree);
2. compute those points' **network** distance vectors with A* (one
   resumable expander per query point, intermediate results kept);
3. *window step*: each Euclidean skyline point ``p``, shifted to its
   network vector ``p̄``, spans the hypercube ``[origin, p̄]`` in
   distance space — only objects whose *Euclidean* vector falls in some
   hypercube can dominate a shifted point; fetch them all into ``C``;
4. compute network vectors for everything in ``C`` (reusing step 2's
   expansions);
5. report the skyline of ``C`` by pairwise comparison (BNL).

**Correctness patch (deviation from the paper).**  As published, steps
1-5 can miss a skyline point: an object that neither belongs to the
Euclidean skyline nor dominates any shifted Euclidean skyline point is
never fetched, yet it may still be undominated in network space.
Concretely, with query points ``q1, q2``, an object ``e`` with
Euclidean vector ``(1, 1)`` and network vector ``(5, 1)`` (a large
detour to ``q1``) Euclidean-dominates an object ``o`` at ``(1.1, 1.2)``
with no detours (network vector ``(1.1, 1.2)``); the only hypercube is
``[0,5] x [0,1]``, which excludes ``o`` (``1.2 > 1``), yet neither
point network-dominates the other, so ``o`` belongs to the answer and
EDC misses it.  We therefore add a **closure step**: after step 5,
repeatedly fetch objects whose Euclidean vector (a lower bound of
their network vector) is not lower-bound-dominated by the current
skyline, compute their vectors, and re-derive the skyline, until
nothing new qualifies.  On workloads without extreme localized detours
the closure fetches nothing and EDC behaves exactly as published; the
``closure_candidates`` extra in the stats records how often it fired.

The incremental variant (:class:`EuclideanDistanceConstraintIncremental`)
follows the paper's progressive description: one Euclidean skyline
point at a time, confirming candidates that dominate the newly shifted
point as soon as their region is fully fetched.
"""

from __future__ import annotations

from repro.columnar.kernels import is_covered_by_any_block
from repro.columnar.store import CandidateBlock, SkylineBlock, VectorTable
from repro.core.base import SkylineAlgorithm, _ResponseTimer, insert_skyline_point
from repro.core.query import Workspace
from repro.core.result import SkylinePoint
from repro.core.stats import QueryStats
from repro.network.graph import NetworkLocation
from repro.network.objects import SpatialObject
from repro.obs import tracing
from repro.skyline.bbs import (
    euclidean_vector,
    incremental_euclidean_skyline,
    mbr_lower_bound_vector,
)
from repro.skyline.sfs import sfs_skyline
from repro.skyline.dominance import dominates, dominates_or_equal


class _EDCBase(SkylineAlgorithm):
    """State shared by the batch and incremental variants."""

    def _setup(self, workspace: Workspace, queries: list[NetworkLocation]):
        self._workspace = workspace
        self._queries = queries
        self._query_points = [q.point for q in queries]
        self._engine = workspace.engine
        # EDC's cost profile is built on goal-directed A* ("intermediate
        # results kept", Section 6.1): stay on the engine's A*-family
        # backend even when the workspace default is plain Dijkstra.
        self._backend = self._engine._astar_backend_name()
        self._vector_width = len(queries) + workspace.attribute_count
        self._network_vectors: dict[int, tuple[float, ...]] = {}
        self._euclidean_vectors: dict[int, tuple[float, ...]] = {}
        self._objects: dict[int, SpatialObject] = {}

    def _network_vector(
        self, obj: SpatialObject, stats: QueryStats
    ) -> tuple[float, ...]:
        """The object's full network-distance vector (cached)."""
        cached = self._network_vectors.get(obj.object_id)
        if cached is not None:
            return cached
        distances = []
        for q in self._queries:
            distances.append(
                self._engine.distance(q, obj.location, backend=self._backend)
            )
            tracing.record("distance_computations")
        vector = tuple(distances) + obj.attributes
        self._network_vectors[obj.object_id] = vector
        self._objects[obj.object_id] = obj
        return vector

    def _euclidean_vector(self, obj: SpatialObject) -> tuple[float, ...]:
        cached = self._euclidean_vectors.get(obj.object_id)
        if cached is None:
            cached = euclidean_vector(obj.point, self._query_points, obj.attributes)
            self._euclidean_vectors[obj.object_id] = cached
        return cached

    def _fetch_hypercube(
        self, corner: tuple[float, ...], skip: set[int]
    ) -> list[SpatialObject]:
        """Objects whose Euclidean vector lies in ``[origin, corner]``.

        The hypercube lives in distance space; in coordinate space it is
        an intersection of disks, so the R-tree is walked with a pruned
        traversal on per-query mindist vectors.
        """
        attribute_count = self._workspace.attribute_count
        found: list[SpatialObject] = []

        def descend(mbr, payload) -> bool:
            if payload is None:
                bounds = mbr_lower_bound_vector(
                    mbr, self._query_points, attribute_count
                )
                return dominates_or_equal(bounds, corner)
            if payload.object_id in skip:
                return False
            return dominates_or_equal(self._euclidean_vector(payload), corner)

        for _, payload in self._workspace.object_rtree.traverse(descend):
            found.append(payload)
        return found

    def _fetch_union(
        self, corners: list[tuple[float, ...]], skip: set[int]
    ) -> list[SpatialObject]:
        """Objects inside the *union* of the corners' hypercubes.

        The paper's step 3 forms one complex region R and retrieves it
        with a single window query; one pruned traversal beats one
        traversal per corner by a large margin in page reads.
        """
        attribute_count = self._workspace.attribute_count
        found: list[SpatialObject] = []
        width = self._vector_width
        corner_block = VectorTable(width)
        for corner in corners:
            corner_block.append(corner)
        count = len(corner_block)

        def descend(mbr, payload) -> bool:
            if payload is None:
                bounds = mbr_lower_bound_vector(
                    mbr, self._query_points, attribute_count
                )
                return is_covered_by_any_block(
                    corner_block.data, count, width, bounds
                )
            if payload.object_id in skip:
                return False
            return is_covered_by_any_block(
                corner_block.data, count, width, self._euclidean_vector(payload)
            )

        for _, payload in self._workspace.object_rtree.traverse(descend):
            found.append(payload)
        return found

    def _closure(
        self,
        skyline: list[SkylinePoint],
        stats: QueryStats,
        timer: _ResponseTimer,
    ) -> None:
        """Fetch-and-test loop guaranteeing completeness (see module doc)."""
        with tracing.span("edc.closure"):
            self._closure_body(skyline, stats, timer)

    def _closure_body(
        self,
        skyline: list[SkylinePoint],
        stats: QueryStats,
        timer: _ResponseTimer,
    ) -> None:
        fetched = set(self._network_vectors)
        extra = 0
        sky = SkylineBlock(self._vector_width)
        while True:
            # Snapshot of the confirmed set for this traversal round;
            # points confirmed mid-round only widen the next round's net.
            sky.rebuild(p.vector for p in skyline)

            def descend(mbr, payload) -> bool:
                if payload is None:
                    bounds = mbr_lower_bound_vector(
                        mbr, self._query_points, self._workspace.attribute_count
                    )
                else:
                    if payload.object_id in fetched:
                        return False
                    bounds = self._euclidean_vector(payload)
                return not sky.dominates_lb(bounds)

            new_objects = [
                payload
                for _, payload in self._workspace.object_rtree.traverse(descend)
            ]
            if not new_objects:
                break
            extra += len(new_objects)
            for obj in new_objects:
                fetched.add(obj.object_id)
                vector = self._network_vector(obj, stats)
                if not any(dominates(s.vector, vector) for s in skyline):
                    insert_skyline_point(skyline, SkylinePoint(obj=obj, vector=vector))
                    timer.mark_first_result()
        if extra:
            stats.merge_extras({"closure_candidates": extra})
            stats.candidate_count += extra


class EuclideanDistanceConstraint(_EDCBase):
    """Batch EDC: the five steps of Section 4.2, plus the closure patch."""

    name = "EDC"

    def _execute(
        self,
        workspace: Workspace,
        queries: list[NetworkLocation],
        stats: QueryStats,
        timer: _ResponseTimer,
    ) -> list[SkylinePoint]:
        self._setup(workspace, queries)

        # Step 1: Euclidean multi-source skyline.
        with tracing.span("edc.euclidean"):
            euclidean_sky = list(
                incremental_euclidean_skyline(
                    workspace.object_rtree,
                    self._query_points,
                    attribute_count=workspace.attribute_count,
                )
            )

        # Step 2: network vectors of the Euclidean skyline points.
        candidates: dict[int, SpatialObject] = {}
        shifted: list[tuple[float, ...]] = []
        with tracing.span("edc.shift"):
            for obj, _vec in euclidean_sky:
                candidates[obj.object_id] = obj
                shifted.append(self._network_vector(obj, stats))

        # Step 3: one window query over the union of the hypercubes.
        skip = set(candidates)
        with tracing.span("edc.window"):
            for obj in self._fetch_union(shifted, skip):
                candidates[obj.object_id] = obj
                skip.add(obj.object_id)

        stats.candidate_count = len(candidates)

        # Steps 4+5: network vectors for every candidate (A* state
        # reused), then the skyline of the candidate set (SFS:
        # presorted by the monotone component sum, each tuple compared
        # to the confirmed skyline only).
        skyline: list[SkylinePoint] = []
        with tracing.span("edc.refine"):
            ordered = sorted(candidates.values(), key=lambda o: o.object_id)
            block = CandidateBlock(self._vector_width)
            for obj in ordered:
                block.add(obj.object_id, self._network_vector(obj, stats))
            for index in block.skyline():
                insert_skyline_point(
                    skyline,
                    SkylinePoint(obj=ordered[index], vector=block.vectors.row(index)),
                )
                timer.mark_first_result()

        # Correctness closure (no-op when the paper's region sufficed).
        self._closure(skyline, stats, timer)

        return skyline


class EuclideanDistanceConstraintIncremental(_EDCBase):
    """Progressive EDC: report skyline points as regions resolve.

    Follows the paper's incremental description: after shifting one
    Euclidean skyline point ``e`` to ``ē`` and fetching ``ē``'s
    hypercube, any candidate that *dominates* ``ē`` can be confirmed
    immediately — all of its potential dominators lie inside the fetched
    region (they would dominate ``ē`` too, transitively).  Remaining
    candidates stay undetermined until the Euclidean stream dries up.
    """

    name = "EDC-inc"

    def _execute(
        self,
        workspace: Workspace,
        queries: list[NetworkLocation],
        stats: QueryStats,
        timer: _ResponseTimer,
    ) -> list[SkylinePoint]:
        self._setup(workspace, queries)
        width = self._vector_width
        covered = VectorTable(width)
        undetermined: dict[int, tuple[SpatialObject, tuple[float, ...]]] = {}
        skyline: list[SkylinePoint] = []
        fetched: set[int] = set()

        def in_covered_region(vector: tuple[float, ...]) -> bool:
            return is_covered_by_any_block(
                covered.data, len(covered), width, vector
            )

        stream = incremental_euclidean_skyline(
            workspace.object_rtree,
            self._query_points,
            extra_prune=in_covered_region,
            attribute_count=workspace.attribute_count,
        )
        with tracing.span("edc.stream"):
            for euclid_obj, _euclid_vec in stream:
                if euclid_obj.object_id not in fetched:
                    fetched.add(euclid_obj.object_id)
                    vector = self._network_vector(euclid_obj, stats)
                    undetermined[euclid_obj.object_id] = (euclid_obj, vector)
                corner = self._network_vectors[euclid_obj.object_id]
                for obj in self._fetch_hypercube(corner, fetched):
                    fetched.add(obj.object_id)
                    undetermined[obj.object_id] = (
                        obj,
                        self._network_vector(obj, stats),
                    )
                covered.append(corner)
                self._confirm_resolved(corner, undetermined, skyline, timer)

        # The Euclidean stream is exhausted: every undetermined candidate
        # not dominated within the computed set is a skyline point.
        remaining = sorted(undetermined)
        all_vectors = [undetermined[i][1] for i in remaining]
        sky = SkylineBlock(width)
        sky.rebuild(s.vector for s in skyline)
        for position in sfs_skyline(all_vectors):
            obj, vector = undetermined[remaining[position]]
            if not sky.dominates(vector):
                insert_skyline_point(skyline, SkylinePoint(obj=obj, vector=vector))
                sky.rebuild(s.vector for s in skyline)
                timer.mark_first_result()

        stats.candidate_count = len(fetched)
        self._closure(skyline, stats, timer)
        return skyline

    def _confirm_resolved(
        self,
        corner: tuple[float, ...],
        undetermined: dict[int, tuple[SpatialObject, tuple[float, ...]]],
        skyline: list[SkylinePoint],
        timer: _ResponseTimer,
    ) -> None:
        """Confirm candidates that dominate the freshly shifted point."""
        vectors = {i: vec for i, (_, vec) in undetermined.items()}
        for object_id in sorted(undetermined):
            obj, vector = undetermined[object_id]
            if not dominates(vector, corner):
                continue
            dominated = any(dominates(s.vector, vector) for s in skyline) or any(
                other_id != object_id and dominates(other, vector)
                for other_id, other in vectors.items()
            )
            del undetermined[object_id]
            if not dominated:
                insert_skyline_point(skyline, SkylinePoint(obj=obj, vector=vector))
                timer.mark_first_result()
