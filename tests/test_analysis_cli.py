"""CLI-level tests: `repro lint` / `python -m repro.analysis`.

Includes the PR's acceptance gate: the real source tree lints clean
with no baseline.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.analysis import run_lint
from repro.analysis.cli import main as lint_main
from repro.cli import main as repro_main

REPO = Path(__file__).resolve().parents[1]
SRC = REPO / "src" / "repro"
FIXTURES = Path(__file__).resolve().parent / "fixtures" / "lint"
FAKE = FIXTURES / "fakerepo" / "repro"
GOOD = FIXTURES / "goodrepo" / "repro"


def test_repo_lints_clean_with_no_baseline():
    result = run_lint([str(SRC)])
    assert not result.errors
    assert result.findings == [], [
        f"{f.path}:{f.line}: {f.rule_id}" for f in result.findings
    ]
    assert result.baselined == 0
    assert result.files_checked > 50
    assert result.exit_code == 0


def test_cli_exit_codes(capsys):
    assert lint_main([str(GOOD)]) == 0
    assert lint_main([str(FAKE)]) == 1
    capsys.readouterr()


def test_cli_defaults_to_repro_package(capsys):
    assert lint_main([]) == 0
    out = capsys.readouterr().out
    assert "0 findings" in out


def test_repro_lint_subcommand(capsys):
    assert repro_main(["lint", str(GOOD)]) == 0
    assert repro_main(["lint", str(FAKE), "--select", "REPRO-ARCH01"]) == 1
    out = capsys.readouterr().out
    assert "REPRO-ARCH01" in out


def test_json_format_and_output_file(tmp_path, capsys):
    report_file = tmp_path / "lint.json"
    code = lint_main(
        [
            str(FAKE),
            "--format",
            "json",
            "--output",
            str(report_file),
        ]
    )
    assert code == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload == json.loads(report_file.read_text(encoding="utf-8"))
    assert payload["exit_code"] == 1
    rule_ids = {f["rule_id"] for f in payload["findings"]}
    for family in ("ARCH", "PAGE", "LOCK", "ORDER", "TELE"):
        assert any(r.startswith(f"REPRO-{family}") for r in rule_ids), family
    for finding in payload["findings"]:
        assert finding["path"]
        assert finding["line"] >= 1
        assert finding["message"]


def test_list_rules(capsys):
    assert lint_main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule_id in (
        "REPRO-ARCH01",
        "REPRO-ARCH02",
        "REPRO-ARCH03",
        "REPRO-PAGE01",
        "REPRO-PAGE02",
        "REPRO-PAGE03",
        "REPRO-LOCK01",
        "REPRO-LOCK02",
        "REPRO-LOCK03",
        "REPRO-ORDER01",
        "REPRO-TELE01",
        "REPRO-TELE02",
        "REPRO-TELE03",
    ):
        assert rule_id in out


def test_syntax_error_exits_2(tmp_path, capsys):
    broken = tmp_path / "broken.py"
    broken.write_text("def oops(:\n", encoding="utf-8")
    assert lint_main([str(broken)]) == 2
    assert "syntax error" in capsys.readouterr().out


def test_update_baseline_then_clean(tmp_path, capsys):
    baseline = tmp_path / "baseline.json"
    target = FAKE / "core" / "bad_page.py"
    assert lint_main(
        [str(target), "--baseline", str(baseline), "--update-baseline"]
    ) == 0
    assert lint_main([str(target), "--baseline", str(baseline)]) == 0
    out = capsys.readouterr().out
    assert "baselined" in out
    payload = json.loads(baseline.read_text(encoding="utf-8"))
    assert payload["version"] == 1
    assert len(payload["findings"]) == 3
