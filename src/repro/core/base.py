"""Common machinery shared by the skyline algorithms.

Every algorithm subclasses :class:`SkylineAlgorithm` and implements
``_execute``; the base class handles query validation, timing, and the
telemetry root span whose counters *are* the per-query stats.

Accounting model: ``run`` opens one root tracing span per query
(:mod:`repro.obs.tracing`).  Every instrumented event — a buffer-pool
miss, a settled node, a memo probe — charges the innermost span of the
executing thread, and the root's recursive totals become
:class:`~repro.core.stats.QueryStats`.  Single-threaded this equals the
old before/after counter-delta scheme exactly; under the concurrent
service it is strictly better, because another worker's page misses can
no longer leak into this query's delta.  It also makes the
reconciliation invariant structural: span sums and stats totals agree
because they are the same numbers.
"""

from __future__ import annotations

import time
from abc import ABC, abstractmethod

from repro.core.query import Workspace
from repro.core.result import SkylinePoint, SkylineResult
from repro.core.stats import QueryStats
from repro.network.graph import NetworkLocation
from repro.obs import tracing
from repro.skyline.dominance import dominates


class SkylineAlgorithm(ABC):
    """A multi-source network skyline query processor."""

    name: str = "abstract"

    def run(
        self, workspace: Workspace, queries: list[NetworkLocation]
    ) -> SkylineResult:
        """Answer one query, returning points and cost statistics.

        Stats are read off this run's root tracing span, so workspaces
        can be reused freely; call :meth:`Workspace.reset_io`
        beforehand for cold-buffer runs.
        """
        workspace.validate_queries(queries)
        stats = QueryStats(
            algorithm=self.name,
            query_count=len(queries),
            object_count=len(workspace.objects),
        )
        engine = workspace.engine

        with tracing.span(
            f"query.{self.name}",
            algorithm=self.name,
            query_count=len(queries),
        ) as root:
            started = time.perf_counter()
            timer = _ResponseTimer(
                started,
                # Children attach to the root at creation, so live
                # totals include spans still open when the first point
                # is confirmed mid-execution.
                pages_probe=lambda: (
                    int(root.total("network_pages")),
                    int(
                        root.total("index_pages") + root.total("middle_pages")
                    ),
                ),
            )
            points = self._execute(workspace, list(queries), stats, timer)
            finished = time.perf_counter()

        stats.skyline_count = len(points)
        stats.trace_id = root.trace_id
        if engine is not None:
            stats.distance_backend = engine.backend_name
        totals = root.totals()
        stats.nodes_settled = int(totals.get("nodes_settled", 0))
        stats.distance_computations = int(totals.get("distance_computations", 0))
        stats.lb_expansions = int(totals.get("lb_expansions", 0))
        stats.engine_hits = int(totals.get("engine_hits", 0))
        stats.engine_misses = int(totals.get("engine_misses", 0))
        stats.engine_evictions = int(totals.get("engine_evictions", 0))
        stats.network_pages = int(totals.get("network_pages", 0))
        stats.index_pages = int(totals.get("index_pages", 0))
        stats.middle_pages = int(totals.get("middle_pages", 0))
        stats.oracle_pages = int(totals.get("oracle_pages", 0))
        stats.oracle_nodes_settled = int(totals.get("oracle_nodes_settled", 0))
        stats.oracle_label_entries = int(totals.get("oracle_label_entries", 0))
        stats.oracle_fallbacks = int(totals.get("oracle_fallbacks", 0))
        stats.total_response_s = finished - started
        stats.initial_response_s = timer.first_response(default=stats.total_response_s)
        net_at_first, idx_at_first = timer.pages_at_first(
            default=(stats.network_pages, stats.index_pages + stats.middle_pages)
        )
        stats.initial_network_pages = net_at_first
        stats.initial_index_pages = idx_at_first
        root.attributes["skyline_count"] = len(points)
        return SkylineResult(points=points, stats=stats, trace=root)

    @abstractmethod
    def _execute(
        self,
        workspace: Workspace,
        queries: list[NetworkLocation],
        stats: QueryStats,
        timer: "_ResponseTimer",
    ) -> list[SkylinePoint]:
        """Algorithm body: return the skyline points in discovery order."""


class _ResponseTimer:
    """Records when (and at what I/O cost) the first point is confirmed."""

    def __init__(self, started: float, pages_probe=None) -> None:
        self._started = started
        self._first: float | None = None
        self._pages_probe = pages_probe
        self._pages_at_first: tuple[int, int] | None = None

    def mark_first_result(self) -> None:
        """Call when a skyline point is first reported to the user."""
        if self._first is None:
            self._first = time.perf_counter()
            if self._pages_probe is not None:
                self._pages_at_first = self._pages_probe()

    def first_response(self, default: float) -> float:
        if self._first is None:
            return default
        return self._first - self._started

    def pages_at_first(self, default: tuple[int, int]) -> tuple[int, int]:
        if self._pages_at_first is None:
            return default
        return self._pages_at_first


def insert_skyline_point(
    skyline: list[SkylinePoint], new_point: SkylinePoint
) -> None:
    """Add a confirmed point, evicting members it dominates.

    With continuous distances eviction never fires, but exact ties
    (co-located objects, symmetric networks) can confirm a point before
    a later point that dominates it arrives — dominance is transitive,
    so pruning done with the evicted point remains sound, and evicting
    keeps the final answer exactly the skyline.
    """
    new_vector = new_point.vector
    skyline[:] = [p for p in skyline if not dominates(new_vector, p.vector)]
    skyline.append(new_point)
