"""Thread-safe metric registry with Prometheus text exposition.

A :class:`MetricRegistry` owns named *metric families*; each family has
a type (``counter``, ``gauge`` or ``histogram``), an optional fixed
label schema, and one child per label-value combination.  Families are
get-or-create: registering the same name twice returns the existing
family (and raises if the type or label schema disagrees), so every
component of a workspace can idempotently wire its own metrics.

Two kinds of children exist:

* **instrument children** — hold their own state (``inc``, ``set``,
  ``observe``); used for event-driven signals such as request outcomes
  and latency observations;
* **callback children** — read their value from a zero-argument
  callable at collection time; used to export counters that already
  live elsewhere (buffer-pool :class:`~repro.storage.stats.IOStats`,
  the engine's memo counters) without double bookkeeping.  This is the
  custom-collector bridge pattern of real Prometheus clients.

:meth:`MetricRegistry.render` emits the text exposition format
(``# HELP`` / ``# TYPE`` + samples); :func:`parse_prometheus_text` is
the matching strict parser used by the CI smoke test to prove the
endpoint stays well-formed with zero duplicate families.
"""

from __future__ import annotations

import math
import threading
from typing import Callable, Iterable, Mapping, Sequence

METRIC_TYPES = ("counter", "gauge", "histogram")

DEFAULT_LATENCY_BUCKETS = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)
"""Default histogram buckets (seconds), log-ish spaced like client_python."""


def _validate_name(name: str) -> None:
    if not name or not all(c.isalnum() or c in "_:" for c in name) or name[0].isdigit():
        raise ValueError(f"invalid metric name {name!r}")


def _escape_label_value(value: str) -> str:
    return value.replace("\\", r"\\").replace('"', r"\"").replace("\n", r"\n")


def _format_value(value: float) -> str:
    if value == math.inf:
        return "+Inf"
    if value == -math.inf:
        return "-Inf"
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return repr(float(value))


def _format_labels(labels: Mapping[str, str]) -> str:
    if not labels:
        return ""
    inner = ",".join(
        f'{k}="{_escape_label_value(str(v))}"' for k, v in labels.items()
    )
    return "{" + inner + "}"


class Counter:
    """A monotone counter child (or a callback view of one)."""

    __slots__ = ("_value", "_lock", "_callback")

    def __init__(self, callback: Callable[[], float] | None = None) -> None:
        self._value = 0.0
        self._lock = threading.Lock()
        self._callback = callback

    def inc(self, amount: float = 1.0) -> None:
        if self._callback is not None:
            raise TypeError("callback-backed counters cannot be incremented")
        if amount < 0:
            raise ValueError(f"counters only go up, got {amount}")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        if self._callback is not None:
            return float(self._callback())
        with self._lock:
            return self._value

    def samples(self, name: str, labels: Mapping[str, str]) -> Iterable[tuple]:
        yield (name, labels, self.value)


class Gauge:
    """A set/inc/dec gauge child (or a callback view)."""

    __slots__ = ("_value", "_lock", "_callback")

    def __init__(self, callback: Callable[[], float] | None = None) -> None:
        self._value = 0.0
        self._lock = threading.Lock()
        self._callback = callback

    def set(self, value: float) -> None:
        if self._callback is not None:
            raise TypeError("callback-backed gauges cannot be set")
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        if self._callback is not None:
            raise TypeError("callback-backed gauges cannot be incremented")
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.inc(-amount)

    @property
    def value(self) -> float:
        if self._callback is not None:
            return float(self._callback())
        with self._lock:
            return self._value

    def samples(self, name: str, labels: Mapping[str, str]) -> Iterable[tuple]:
        yield (name, labels, self.value)


class Histogram:
    """Fixed-bucket cumulative histogram child."""

    __slots__ = ("_buckets", "_counts", "_sum", "_count", "_lock")

    def __init__(self, buckets: Sequence[float]) -> None:
        self._buckets = tuple(buckets)
        self._counts = [0] * (len(self._buckets) + 1)  # +1 for +Inf
        self._sum = 0.0
        self._count = 0
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        with self._lock:
            self._sum += value
            self._count += 1
            for i, bound in enumerate(self._buckets):
                if value <= bound:
                    self._counts[i] += 1
                    break
            else:
                self._counts[-1] += 1

    @property
    def bounds(self) -> tuple[float, ...]:
        """Upper bucket bounds, excluding the implicit +Inf bucket."""
        return self._buckets

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    @property
    def sum(self) -> float:
        with self._lock:
            return self._sum

    def snapshot(self) -> tuple[list[int], float, int]:
        """(cumulative per-bucket counts incl. +Inf, sum, count)."""
        with self._lock:
            cumulative: list[int] = []
            running = 0
            for c in self._counts:
                running += c
                cumulative.append(running)
            return cumulative, self._sum, self._count

    def samples(self, name: str, labels: Mapping[str, str]) -> Iterable[tuple]:
        cumulative, total, count = self.snapshot()
        bounds = [*self._buckets, math.inf]
        for bound, cum in zip(bounds, cumulative):
            bucket_labels = dict(labels)
            bucket_labels["le"] = _format_value(float(bound))
            yield (f"{name}_bucket", bucket_labels, cum)
        yield (f"{name}_sum", labels, total)
        yield (f"{name}_count", labels, count)


class MetricFamily:
    """One named metric with a fixed label schema and per-label children."""

    def __init__(
        self,
        name: str,
        kind: str,
        help_text: str = "",
        labels: Sequence[str] = (),
        buckets: Sequence[float] | None = None,
    ) -> None:
        _validate_name(name)
        if kind not in METRIC_TYPES:
            raise ValueError(f"unknown metric type {kind!r}; choose {METRIC_TYPES}")
        if kind == "histogram" and "le" in labels:
            raise ValueError("'le' is reserved for histogram buckets")
        self.name = name
        self.kind = kind
        self.help_text = help_text
        self.label_names = tuple(labels)
        self.buckets = tuple(buckets) if buckets is not None else None
        self._children: dict[tuple[str, ...], object] = {}
        self._lock = threading.Lock()

    def _key_of(self, label_values: Mapping[str, str]) -> tuple[str, ...]:
        if set(label_values) != set(self.label_names):
            raise ValueError(
                f"metric {self.name} takes labels {self.label_names}, "
                f"got {tuple(label_values)}"
            )
        return tuple(str(label_values[k]) for k in self.label_names)

    def _make_child(self, callback: Callable[[], float] | None = None):
        if self.kind == "counter":
            return Counter(callback)
        if self.kind == "gauge":
            return Gauge(callback)
        if callback is not None:
            raise TypeError("histograms do not support callbacks")
        return Histogram(self.buckets or DEFAULT_LATENCY_BUCKETS)

    def labels(self, **label_values: str):
        """The (lazily created) child for one label-value combination."""
        key = self._key_of(label_values)
        with self._lock:
            child = self._children.get(key)
            if child is None:
                child = self._make_child()
                self._children[key] = child
            return child

    def attach_callback(
        self, callback: Callable[[], float], **label_values: str
    ) -> None:
        """Register a callback child (overwrites an existing child)."""
        key = self._key_of(label_values)
        with self._lock:
            self._children[key] = self._make_child(callback)

    def child_count(self) -> int:
        with self._lock:
            return len(self._children)

    def collect(self) -> list[tuple]:
        """``(sample_name, labels_dict, value)`` triples, label-sorted."""
        with self._lock:
            children = sorted(self._children.items())
        out: list[tuple] = []
        for key, child in children:
            labels = dict(zip(self.label_names, key))
            out.extend(child.samples(self.name, labels))
        return out


class MetricRegistry:
    """Thread-safe collection of metric families with text exposition."""

    def __init__(self) -> None:
        self._families: dict[str, MetricFamily] = {}
        self._lock = threading.Lock()

    def _get_or_create(
        self,
        name: str,
        kind: str,
        help_text: str,
        labels: Sequence[str],
        buckets: Sequence[float] | None = None,
    ) -> MetricFamily:
        with self._lock:
            family = self._families.get(name)
            if family is None:
                family = MetricFamily(name, kind, help_text, labels, buckets)
                self._families[name] = family
                return family
        if family.kind != kind:
            raise ValueError(
                f"metric {name} already registered as {family.kind}, not {kind}"
            )
        if family.label_names != tuple(labels):
            raise ValueError(
                f"metric {name} already registered with labels "
                f"{family.label_names}, not {tuple(labels)}"
            )
        return family

    def counter(
        self, name: str, help_text: str = "", labels: Sequence[str] = ()
    ) -> MetricFamily:
        return self._get_or_create(name, "counter", help_text, labels)

    def gauge(
        self, name: str, help_text: str = "", labels: Sequence[str] = ()
    ) -> MetricFamily:
        return self._get_or_create(name, "gauge", help_text, labels)

    def histogram(
        self,
        name: str,
        help_text: str = "",
        labels: Sequence[str] = (),
        buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS,
    ) -> MetricFamily:
        return self._get_or_create(name, "histogram", help_text, labels, buckets)

    def register_callback(
        self,
        name: str,
        callback: Callable[[], float],
        kind: str = "gauge",
        help_text: str = "",
        **label_values: str,
    ) -> MetricFamily:
        """Expose an externally maintained value under ``name``.

        The common bridge for counters that already live in IOStats,
        the engine, or the service: collection calls ``callback()``.
        """
        family = self._get_or_create(
            name, kind, help_text, tuple(sorted(label_values))
        )
        family.attach_callback(callback, **label_values)
        return family

    def families(self) -> list[MetricFamily]:
        with self._lock:
            return [self._families[k] for k in sorted(self._families)]

    def collect(self) -> dict[str, list[tuple]]:
        """All samples, keyed by family name (for tests and /statsz)."""
        return {f.name: f.collect() for f in self.families()}

    def render(self) -> str:
        """The Prometheus text exposition (one HELP/TYPE per family)."""
        lines: list[str] = []
        for family in self.families():
            help_text = family.help_text.replace("\\", r"\\").replace("\n", r"\n")
            lines.append(f"# HELP {family.name} {help_text}")
            lines.append(f"# TYPE {family.name} {family.kind}")
            for sample_name, labels, value in family.collect():
                lines.append(
                    f"{sample_name}{_format_labels(labels)} {_format_value(value)}"
                )
        return "\n".join(lines) + "\n"


def parse_prometheus_text(text: str) -> dict[str, dict]:
    """Strictly parse an exposition, raising on malformed or duplicate data.

    Returns ``{family_name: {"type": ..., "help": ..., "samples":
    [(name, labels, value), ...]}}``.  A family name appearing in two
    separate ``# TYPE`` blocks — the drift the CI smoke guards against —
    raises ``ValueError``.
    """
    families: dict[str, dict] = {}
    current: str | None = None
    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        if line.startswith("# HELP "):
            parts = line.split(" ", 3)
            if len(parts) < 3:
                raise ValueError(f"line {lineno}: malformed HELP: {line!r}")
            name = parts[2]
            if name in families:
                raise ValueError(f"line {lineno}: duplicate family {name!r}")
            families[name] = {
                "type": None,
                "help": parts[3] if len(parts) > 3 else "",
                "samples": [],
            }
            current = name
        elif line.startswith("# TYPE "):
            parts = line.split(" ")
            if len(parts) != 4 or parts[3] not in METRIC_TYPES:
                raise ValueError(f"line {lineno}: malformed TYPE: {line!r}")
            name = parts[2]
            if name not in families:
                raise ValueError(f"line {lineno}: TYPE before HELP for {name!r}")
            if families[name]["type"] is not None:
                raise ValueError(f"line {lineno}: duplicate TYPE for {name!r}")
            families[name]["type"] = parts[3]
            current = name
        elif line.startswith("#"):
            continue
        else:
            sample_name, labels, value = _parse_sample(line, lineno)
            base = sample_name
            for suffix in ("_bucket", "_sum", "_count"):
                base_name = sample_name[: -len(suffix)]
                if sample_name.endswith(suffix) and base_name in families:
                    base = sample_name[: -len(suffix)]
                    break
            if base not in families:
                raise ValueError(
                    f"line {lineno}: sample {sample_name!r} outside any family"
                )
            if current != base:
                raise ValueError(
                    f"line {lineno}: sample for {base!r} interleaved into "
                    f"{current!r}'s block"
                )
            families[base]["samples"].append((sample_name, labels, value))
    for name, family in families.items():
        if family["type"] is None:
            raise ValueError(f"family {name!r} has HELP but no TYPE")
    return families


def _parse_labels(label_part: str, lineno: int) -> dict[str, str]:
    """Quote-aware label parsing: values may contain commas, escaped
    quotes and backslashes (``cohort="LBC/dijkstra/|Q|[2,4)/ok"``), so
    splitting the block on ``,`` is wrong — scan instead."""
    labels: dict[str, str] = {}
    pos = 0
    while pos < len(label_part):
        if label_part[pos] == ",":
            pos += 1
            continue
        eq = label_part.find("=", pos)
        if eq < 0:
            raise ValueError(
                f"line {lineno}: malformed label {label_part[pos:]!r}"
            )
        key = label_part[pos:eq].strip()
        if eq + 1 >= len(label_part) or label_part[eq + 1] != '"':
            raise ValueError(
                f"line {lineno}: unquoted label value "
                f"{label_part[eq + 1:]!r}"
            )
        value_chars: list[str] = []
        pos = eq + 2
        while pos < len(label_part) and label_part[pos] != '"':
            if label_part[pos] == "\\" and pos + 1 < len(label_part):
                escaped = label_part[pos + 1]
                value_chars.append(
                    {"n": "\n", "\\": "\\", '"': '"'}.get(
                        escaped, "\\" + escaped
                    )
                )
                pos += 2
            else:
                value_chars.append(label_part[pos])
                pos += 1
        if pos >= len(label_part):
            raise ValueError(
                f"line {lineno}: unterminated label value for {key!r}"
            )
        pos += 1  # closing quote
        labels[key] = "".join(value_chars)
    return labels


def _parse_sample(line: str, lineno: int) -> tuple[str, dict[str, str], float]:
    rest = line
    labels: dict[str, str] = {}
    if "{" in line:
        name, rest = line.split("{", 1)
        label_part, rest = rest.rsplit("}", 1)
        labels = _parse_labels(label_part, lineno)
    else:
        name, rest = line.split(None, 1)
        rest = " " + rest
    name = name.strip()
    _validate_name(name)
    value_text = rest.strip().split()[0]
    try:
        value = float(value_text)
    except ValueError:
        raise ValueError(f"line {lineno}: bad sample value {value_text!r}")
    return name, labels, value
