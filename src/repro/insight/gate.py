"""Shared diff/gate arithmetic for regression detection.

Both gates in the tree — ``repro bench --compare`` over BENCH_/SCALING_
artifacts (:mod:`repro.bench.compare`) and ``repro insight compare``
over telemetry digests (:mod:`repro.insight.analyze`) — answer the
same question ("did this number get worse, beyond what noise
explains?") and must answer it identically, so the arithmetic lives
here once and both import it.  ``insight`` ranks low in the layer DAG
(stdlib + obs only), so ``bench`` reaching down into it is legal;
the reverse would not be.

Exit-code convention, shared by ``repro bench`` and ``repro insight``:

* ``EXIT_OK`` (0)         — no deterministic regressions;
* ``EXIT_REGRESSION`` (1) — at least one gated number regressed;
* ``EXIT_ERROR`` (2)      — the comparison itself could not run
  (missing file, foreign schema, bad flags).
"""

from __future__ import annotations

EXIT_OK = 0
EXIT_REGRESSION = 1
EXIT_ERROR = 2


def relative_increase(base: float, current: float) -> float:
    """Relative growth of ``current`` over ``base``; ``inf`` when a
    zero baseline becomes non-zero."""
    if base == 0:
        return float("inf") if current > 0 else 0.0
    return (current - base) / base


def is_regression(
    base: float,
    current: float,
    *,
    threshold: float,
    absolute_floor: float = 0.0,
) -> bool:
    """Noise-aware verdict on one number pair.

    A regression needs **both** legs: relative growth beyond
    ``threshold`` *and* absolute growth beyond ``absolute_floor``.
    The floor is what keeps tiny denominators honest — a latency p50
    moving 0.8 ms → 1.3 ms is +62 % and pure scheduler noise; the same
    ratio on 80 ms → 130 ms is a finding.
    """
    if current - base <= absolute_floor:
        return False
    return relative_increase(base, current) > threshold


def format_growth(base: float, current: float) -> str:
    """``"120 -> 380 (+3.2x)"`` / ``"(+12.5%)"`` — the attribution
    suffix both comparators print."""
    growth = relative_increase(base, current)
    if growth == float("inf"):
        factor = "0 -> >0"
    elif growth >= 1.0:
        factor = f"+{1.0 + growth:.1f}x"
    else:
        factor = f"+{growth * 100:.1f}%"
    base_text = _compact(base)
    current_text = _compact(current)
    return f"{base_text} -> {current_text} ({factor})"


def _compact(value: float) -> str:
    if float(value).is_integer():
        return str(int(value))
    return f"{value:.6g}"
