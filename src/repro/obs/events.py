"""Wide-event query log: one canonical JSONL record per query.

Metrics aggregate and traces sample; the *wide event* is the durable
per-query record in between — everything known about one request
(metadata, outcome, every span-derived cost counter, batch/group id,
trace id) flattened into a single JSON line, so "what happened to that
query last night?" is one ``grep`` away and joins against traces and
the slow-query log by ``trace_id``.

Design constraints, in order:

* **The serving hot path never blocks on disk.**  :meth:`EventLog.emit`
  is a bounded-queue handoff to a dedicated writer thread; when the
  queue is full the event is *dropped and counted* (``events_dropped``)
  instead of stalling a worker.  The accounting identity
  ``emitted == written + dropped`` holds exactly once the log is
  closed, and is asserted by the backpressure tests.
* **Bounded disk.**  The writer rotates the file by size
  (``events.jsonl`` → ``events.jsonl.1`` → …), keeping a fixed number
  of rotated generations.
* **Reconciliation by construction.**  The event's ``counters`` block
  is built from the *same* :class:`~repro.core.stats.QueryStats` the
  client response carries (see ``QueryStats.counter_fields``), so the
  event and the stats row cannot drift apart.

``obs`` is a standalone foundation package: this module knows nothing
about the service or the core layer — callers hand it plain dicts.
"""

from __future__ import annotations

import json
import os
import queue
import threading
import time
from typing import Any, Iterator

WIDE_EVENT_VERSION = 1

DEFAULT_EVENT_QUEUE = 1024
DEFAULT_ROTATE_BYTES = 8 * 1024 * 1024
DEFAULT_ROTATE_KEEP = 3

_NUMBER_TYPES = (int, float)


def wide_event(
    *,
    request_id: int | str,
    algorithm: str,
    outcome: str,
    trace_id: str | None = None,
    ts: float | None = None,
    latency_s: float = 0.0,
    span_duration_s: float = 0.0,
    batch_id: int | None = None,
    engine_backend: str = "",
    query_count: int = 0,
    query_nodes: list | None = None,
    skyline_count: int = 0,
    candidate_count: int = 0,
    counters: dict[str, float] | None = None,
    error: str | None = None,
    extras: dict[str, Any] | None = None,
    event: str = "query",
) -> dict[str, Any]:
    """Assemble one canonical wide event (plain JSON-serialisable dict).

    ``counters`` values must be numbers — they are the span-derived
    cost counters and downstream consumers sum them; a non-numeric
    value fails here, at the producer, not in some 3am log query.
    """
    checked: dict[str, float] = {}
    for key, value in (counters or {}).items():
        if not isinstance(key, str) or not key:
            raise TypeError(f"counter keys must be non-empty str, got {key!r}")
        if isinstance(value, bool) or not isinstance(value, _NUMBER_TYPES):
            raise TypeError(
                f"counters[{key!r}] must be a number, got {type(value).__name__}"
            )
        checked[key] = int(value) if float(value).is_integer() else float(value)
    record: dict[str, Any] = {
        "event": event,
        "v": WIDE_EVENT_VERSION,
        "ts": time.time() if ts is None else ts,
        "request_id": request_id,
        "algorithm": algorithm,
        "outcome": outcome,
        "trace_id": trace_id,
        "batch_id": batch_id,
        "engine_backend": engine_backend,
        "latency_s": latency_s,
        "span_duration_s": span_duration_s,
        "query_count": query_count,
        "query_nodes": list(query_nodes or []),
        "skyline_count": skyline_count,
        "candidate_count": candidate_count,
        "counters": checked,
    }
    if error is not None:
        record["error"] = error
    if extras:
        record["extras"] = dict(extras)
    return record


class EventLog:
    """Bounded-queue async JSONL writer with size-based rotation.

    One writer thread owns the file; producers call :meth:`emit`, which
    either enqueues (cheap: one ``Queue.put_nowait``) or drops.  All
    four lifecycle counters — emitted, written, dropped, rotations —
    are exact, and ``flush()``/``close()`` provide the barriers tests
    and shutdown paths need.
    """

    def __init__(
        self,
        path: str,
        *,
        queue_limit: int = DEFAULT_EVENT_QUEUE,
        rotate_bytes: int = DEFAULT_ROTATE_BYTES,
        rotate_keep: int = DEFAULT_ROTATE_KEEP,
    ) -> None:
        if queue_limit < 1:
            raise ValueError(f"queue limit must be >= 1, got {queue_limit}")
        if rotate_bytes < 1:
            raise ValueError(f"rotate_bytes must be >= 1, got {rotate_bytes}")
        if rotate_keep < 1:
            raise ValueError(f"rotate_keep must be >= 1, got {rotate_keep}")
        self.path = path
        self.rotate_bytes = rotate_bytes
        self.rotate_keep = rotate_keep
        self._queue: queue.Queue = queue.Queue(maxsize=queue_limit)
        self._state = threading.Condition()
        # Guarded by _state's lock.
        self._emitted = 0
        self._written = 0
        self._dropped = 0
        self._rotations = 0
        self._closed = False

        directory = os.path.dirname(os.path.abspath(path))
        os.makedirs(directory, exist_ok=True)
        self._handle = open(path, "a", encoding="utf-8")
        self._size = self._handle.tell()
        self._thread = threading.Thread(
            target=self._writer_loop, name="repro-events", daemon=True
        )
        self._thread.start()

    # -- producer side -------------------------------------------------

    def emit(self, event: dict[str, Any]) -> bool:
        """Enqueue one event; returns False (and counts) when shedding.

        Never blocks: a full queue means the writer is behind, and a
        diagnostics plane that stalls the plane it diagnoses would be
        worse than a gap in the log.
        """
        with self._state:
            self._emitted += 1
            if self._closed:
                self._dropped += 1
                return False
        try:
            self._queue.put_nowait(event)
        except queue.Full:
            with self._state:
                self._dropped += 1
            return False
        return True

    # -- writer side ---------------------------------------------------

    def _writer_loop(self) -> None:
        while True:
            try:
                item = self._queue.get(timeout=0.1)
            except queue.Empty:
                with self._state:
                    if self._closed and self._queue.empty():
                        return
                continue
            if item is None:  # close() sentinel
                return
            self._write_record(item)
            with self._state:
                self._written += 1
                self._state.notify_all()

    def _write_record(self, event: dict[str, Any]) -> None:
        """Serialise + append one record (writer thread only).

        Split out as a method so tests can subclass with an artificially
        slow writer to drive the backpressure path deterministically.
        """
        line = json.dumps(event, separators=(",", ":")) + "\n"
        encoded = len(line.encode("utf-8"))
        if self._size > 0 and self._size + encoded > self.rotate_bytes:
            self._rotate()
        self._handle.write(line)
        self._handle.flush()
        self._size += encoded

    def _rotate(self) -> None:
        """Shift ``path`` -> ``path.1`` -> … -> ``path.keep`` (dropped)."""
        self._handle.close()
        oldest = f"{self.path}.{self.rotate_keep}"
        if os.path.exists(oldest):
            os.remove(oldest)
        for index in range(self.rotate_keep - 1, 0, -1):
            source = f"{self.path}.{index}"
            if os.path.exists(source):
                os.replace(source, f"{self.path}.{index + 1}")
        os.replace(self.path, f"{self.path}.1")
        self._handle = open(self.path, "a", encoding="utf-8")
        self._size = 0
        with self._state:
            self._rotations += 1

    # -- barriers ------------------------------------------------------

    def flush(self, timeout: float | None = 5.0) -> bool:
        """Block until everything emitted so far is written or dropped."""
        with self._state:
            target = self._emitted
            deadline = None if timeout is None else time.monotonic() + timeout
            while self._written + self._dropped < target:
                remaining = None
                if deadline is not None:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        return False
                self._state.wait(remaining)
        return True

    def close(self, timeout: float | None = 5.0) -> None:
        """Drain the queue, stop the writer, close the file."""
        with self._state:
            if self._closed:
                return
            self._closed = True
        self.flush(timeout=timeout)
        try:
            self._queue.put_nowait(None)
        except queue.Full:
            pass
        self._thread.join(timeout=timeout)
        self._handle.close()

    def __enter__(self) -> "EventLog":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- introspection -------------------------------------------------

    def stats(self) -> dict[str, int]:
        """Exact lifecycle accounting (emitted = written + dropped
        once closed)."""
        with self._state:
            return {
                "emitted": self._emitted,
                "written": self._written,
                "dropped": self._dropped,
                "rotations": self._rotations,
                "queue_depth": self._queue.qsize(),
            }

    @property
    def emitted(self) -> int:
        with self._state:
            return self._emitted

    @property
    def written(self) -> int:
        with self._state:
            return self._written

    @property
    def dropped(self) -> int:
        with self._state:
            return self._dropped

    @property
    def rotations(self) -> int:
        with self._state:
            return self._rotations

    @property
    def queue_depth(self) -> int:
        return self._queue.qsize()


class EventReader:
    """Iterator over a wide-event log, oldest first, crash-tolerant.

    Two realities of reading a log that something else is writing:

    * **Partial records.**  A crash mid-``write`` (or reading the live
      file while the writer is between ``write`` and ``flush``) leaves
      a truncated final line; any line may also be corrupt on a bad
      disk.  Aborting the whole analysis over one bad line would make
      the log least readable exactly when it matters most, so corrupt
      and partial lines are *skipped and counted* —
      :attr:`corrupt_lines` reports how many, and callers surface it.
    * **Rotation races.**  Between listing generations and opening one,
      the writer may rotate it away (``path.2`` renamed to ``path.3``);
      a vanished generation is skipped rather than raised.

    Generations are ordered oldest first: ``path.N … path.1, path``.
    """

    def __init__(self, path: str, include_rotated: bool = True) -> None:
        self.path = path
        self.include_rotated = include_rotated
        self.corrupt_lines = 0
        self.files_read = 0
        self._iterator = self._iterate()

    def __iter__(self) -> "EventReader":
        return self

    def __next__(self) -> dict:
        return next(self._iterator)

    def _paths(self) -> list[str]:
        paths: list[str] = []
        if self.include_rotated:
            generation = 1
            rotated: list[str] = []
            while os.path.exists(f"{self.path}.{generation}"):
                rotated.append(f"{self.path}.{generation}")
                generation += 1
            paths.extend(reversed(rotated))
        if os.path.exists(self.path):
            paths.append(self.path)
        return paths

    def _iterate(self) -> Iterator[dict]:
        for file_path in self._paths():
            try:
                handle = open(file_path, encoding="utf-8")
            except FileNotFoundError:
                continue  # rotated away since _paths() listed it
            with handle:
                for line in handle:
                    line = line.strip()
                    if not line:
                        continue
                    try:
                        event = json.loads(line)
                    except json.JSONDecodeError:
                        self.corrupt_lines += 1
                        continue
                    if not isinstance(event, dict):
                        self.corrupt_lines += 1
                        continue
                    yield event
            self.files_read += 1


def iter_events(path: str, include_rotated: bool = True) -> EventReader:
    """Parsed events, oldest first, optionally across rotated files.

    Returns an :class:`EventReader`; after (or during) iteration its
    ``corrupt_lines`` attribute counts skipped partial/corrupt lines.
    """
    return EventReader(path, include_rotated=include_rotated)


def read_events(path: str, include_rotated: bool = True) -> list[dict]:
    """All events under ``path`` (rotations included), oldest first."""
    return list(iter_events(path, include_rotated=include_rotated))
