"""Traversal that charges the store for every expanded node."""


def expand(network, store, node):
    store.touch_node(node)
    return list(network.neighbors(node))
