"""Unit tests for the figure shape-verification predicates."""


from repro.experiments.figures import FigureSeries
from repro.experiments.shapes import (
    check_flat,
    check_non_decreasing,
    check_pointwise_leq,
    check_ratio_at,
    check_slowing_growth,
    check_winner_at,
    verify_all,
    verify_fig4a,
    verify_fig4c,
    verify_fig5a,
)


def make_series(figure, x_values, series, x_label="x"):
    return FigureSeries(
        figure=figure,
        title=figure,
        x_label=x_label,
        y_label="y",
        x_values=list(x_values),
        series={k: list(v) for k, v in series.items()},
    )


class TestPredicates:
    def test_non_decreasing_pass(self):
        s = make_series("F", [1, 2, 3], {"A": [1.0, 2.0, 3.0]})
        assert check_non_decreasing(s, "A").passed

    def test_non_decreasing_tolerates_small_dips(self):
        s = make_series("F", [1, 2, 3], {"A": [1.0, 0.95, 3.0]})
        assert check_non_decreasing(s, "A").passed

    def test_non_decreasing_fails_on_collapse(self):
        s = make_series("F", [1, 2, 3], {"A": [3.0, 1.0, 0.5]})
        assert not check_non_decreasing(s, "A").passed

    def test_flat_pass_and_fail(self):
        s = make_series("F", [1, 2], {"A": [1.0, 1.5], "B": [1.0, 10.0]})
        assert check_flat(s, "A").passed
        assert not check_flat(s, "B").passed

    def test_pointwise_leq(self):
        s = make_series("F", [1, 2], {"A": [1.0, 2.0], "B": [1.5, 2.5]})
        assert check_pointwise_leq(s, "A", "B").passed
        assert not check_pointwise_leq(s, "B", "A").passed

    def test_pointwise_leq_slack(self):
        s = make_series("F", [1], {"A": [1.05], "B": [1.0]})
        assert check_pointwise_leq(s, "A", "B", slack=0.10).passed
        assert not check_pointwise_leq(s, "A", "B", slack=0.01).passed

    def test_winner_at(self):
        s = make_series("F", ["CA", "NA"], {"A": [1.0, 5.0], "B": [2.0, 3.0]})
        assert check_winner_at(s, "CA", "A").passed
        assert check_winner_at(s, "NA", "B").passed
        assert not check_winner_at(s, "NA", "A").passed

    def test_ratio_at(self):
        s = make_series("F", ["NA"], {"CE": [100.0], "LBC": [20.0]})
        assert check_ratio_at(s, "NA", "CE", "LBC", at_least=4.0).passed
        assert not check_ratio_at(s, "NA", "CE", "LBC", at_least=6.0).passed

    def test_slowing_growth(self):
        fast_then_slow = make_series(
            "F", [1, 2, 3, 4], {"A": [0.0, 10.0, 15.0, 17.0]}
        )
        assert check_slowing_growth(fast_then_slow, "A").passed
        accelerating = make_series(
            "F", [1, 2, 3, 4], {"A": [0.0, 1.0, 5.0, 20.0]}
        )
        assert not check_slowing_growth(accelerating, "A").passed

    def test_slowing_growth_needs_points(self):
        s = make_series("F", [1, 2], {"A": [1.0, 2.0]})
        assert not check_slowing_growth(s, "A").passed


class TestFigureVerifiers:
    def test_fig4a_paperlike_passes(self):
        s = make_series(
            "Fig4a",
            [2, 4, 8, 15],
            {
                "CE": [0.04, 0.12, 0.22, 0.24],
                "EDC": [0.07, 0.15, 0.23, 0.25],
                "LBC": [0.05, 0.12, 0.22, 0.25],
            },
            x_label="|Q|",
        )
        checks = verify_fig4a(s)
        assert all(c.passed for c in checks)

    def test_fig4c_detects_delta_effect(self):
        good = make_series(
            "Fig4c",
            ["CA", "AU", "NA"],
            {"CE": [0.2, 0.09, 0.12], "EDC": [0.42, 0.11, 0.15],
             "LBC": [0.37, 0.10, 0.12]},
        )
        assert all(c.passed for c in verify_fig4c(good))
        flipped = make_series(
            "Fig4c",
            ["CA", "AU", "NA"],
            {"CE": [0.5, 0.09, 0.12], "EDC": [0.3, 0.11, 0.15],
             "LBC": [0.2, 0.10, 0.12]},
        )
        assert not all(c.passed for c in verify_fig4c(flipped))

    def test_fig5a_headline_factor(self):
        s = make_series(
            "Fig5a",
            ["CA", "AU", "NA"],
            {"CE": [4.6, 14.8, 131.0], "EDC": [4.4, 15.0, 38.6],
             "LBC": [4.4, 12.6, 29.8]},
        )
        checks = verify_fig5a(s)
        assert all(c.passed for c in checks)

    def test_verify_all_skips_missing_figures(self):
        s = make_series(
            "Fig5a",
            ["CA", "NA"],
            {"CE": [4.0, 100.0], "EDC": [4.0, 40.0], "LBC": [4.0, 30.0]},
        )
        checks = verify_all({"Fig5a": s})
        assert checks
        assert all(c.figure == "Fig5a" for c in checks)

    def test_verify_all_empty(self):
        assert verify_all({}) == []

    def test_check_str_format(self):
        s = make_series("F", [1], {"A": [1.0], "B": [2.0]})
        check = check_winner_at(s, 1, "A")
        text = str(check)
        assert text.startswith("[PASS]")
        assert "F" in text


class TestMeasuredShapes:
    """The encoded claims hold on an actually-measured (small) run."""

    def test_fig5a_claims_on_real_measurement(self):
        """A 2-trial run satisfies the ordering claims; the headline
        CE/LBC >= 2x factor needs the full 5-trial average (some query
        draws barely stress CE), so here we assert a softer 1.2x."""
        from repro.experiments import ExperimentConfig, WorkloadCache, run_fig5
        from repro.experiments.shapes import (
            check_non_decreasing,
            check_ratio_at,
            check_winner_at,
            verify_fig5c,
        )

        base = ExperimentConfig(trials=2)
        cache = WorkloadCache()
        pages, _, initial = run_fig5(base, cache=cache)
        for check in (
            check_non_decreasing(pages, "CE"),
            check_winner_at(pages, "NA", "LBC"),
            check_ratio_at(pages, "NA", "CE", "LBC", at_least=1.2),
        ):
            assert check.passed, str(check)
        for check in verify_fig5c(initial):
            assert check.passed, str(check)
