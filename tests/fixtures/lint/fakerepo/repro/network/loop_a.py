"""Half of a seeded module-level import cycle."""

import repro.network.loop_b  # EXPECT: REPRO-ARCH02

VALUE_A = 1


def read_b():
    return repro.network.loop_b.VALUE_B
