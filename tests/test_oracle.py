"""Tests for the preprocessed distance-oracle layer (``repro.oracle``).

Exactness strategy: on networks whose edge lengths are integer-valued
floats, every path sum is exact regardless of association order (all
sums stay far below 2**53), so CH and hub-label answers must be
**bit-identical** to online Dijkstra — equality is asserted with ``==``,
never a tolerance.  (On irrational lengths the oracle's pre-summed
shortcut weights associate differently and can differ in the last bit;
``repro oracle verify`` covers that regime with a relative tolerance.)
"""

import math
import random

import pytest

from repro.engine import DistanceEngine
from repro.geometry import Point
from repro.network import NetworkStore, RoadNetwork
from repro.obs import tracing
from repro.oracle import (
    DistanceOracle,
    OracleIndexError,
    build_oracle_index,
    load_oracle_index,
    network_signature,
    save_oracle_index,
)
from repro.oracle.store import OracleStore

INF = math.inf


def integer_network(
    seed: int,
    node_count: int = 60,
    extra_edges: int = 40,
    components: int = 1,
) -> RoadNetwork:
    """A random network whose edge lengths are integer-valued floats.

    Integer lattice coordinates plus ``ceil(chord) + k`` lengths keep
    every distance an exact small integer, which is what makes the
    bit-identity assertions in this module legitimate.  ``components``
    > 1 partitions the nodes into that many disconnected chains.
    """
    rng = random.Random(seed)
    net = RoadNetwork()
    points = [
        Point(float(rng.randrange(1000)), float(rng.randrange(1000)))
        for _ in range(node_count)
    ]
    for i, p in enumerate(points):
        net.add_node(i, p)
    chunk = node_count // components
    chunks = [
        list(range(c * chunk, node_count if c == components - 1 else (c + 1) * chunk))
        for c in range(components)
    ]

    def connect(a: int, b: int) -> None:
        chord = points[a].distance_to(points[b])
        net.add_edge(a, b, length=float(math.ceil(chord) + rng.randrange(10)))
    for ids in chunks:
        order = list(ids)
        rng.shuffle(order)
        for a, b in zip(order, order[1:]):
            connect(a, b)
    for _ in range(extra_edges):
        ids = rng.choice(chunks)
        if len(ids) < 2:
            continue
        a, b = rng.sample(ids, 2)
        connect(a, b)
    return net


def node_pairs(net: RoadNetwork, seed: int, count: int):
    rng = random.Random(seed)
    nodes = sorted(net.node_ids())
    for _ in range(count):
        a, b = rng.choice(nodes), rng.choice(nodes)
        yield net.location_at_node(a), net.location_at_node(b)


def edge_pairs(net: RoadNetwork, seed: int, count: int):
    """On-edge locations at integer offsets (kept integer-exact)."""
    rng = random.Random(seed)
    edges = sorted(net.edge_ids())
    for _ in range(count):
        locs = []
        for _ in range(2):
            edge = net.edge(rng.choice(edges))
            offset = float(rng.randrange(int(edge.length) + 1))
            locs.append(net.location_on_edge(edge.edge_id, offset))
        yield locs[0], locs[1]


# ----------------------------------------------------------------------
# Exact equivalence with online Dijkstra
# ----------------------------------------------------------------------
class TestExactEquivalence:
    @pytest.mark.parametrize("kind", ["ch", "hublabel"])
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_node_pairs_bit_identical(self, kind, seed):
        net = integer_network(seed)
        reference = DistanceEngine(net, backend="dijkstra")
        oracle = DistanceEngine(net, backend=kind)
        for a, b in node_pairs(net, seed + 50, 60):
            assert oracle.distance(a, b) == reference.distance(a, b)

    @pytest.mark.parametrize("kind", ["ch", "hublabel"])
    def test_on_edge_pairs_bit_identical(self, kind):
        net = integer_network(9)
        reference = DistanceEngine(net, backend="dijkstra")
        oracle = DistanceEngine(net, backend=kind)
        for a, b in edge_pairs(net, 42, 40):
            assert oracle.distance(a, b) == reference.distance(a, b)

    @pytest.mark.parametrize("kind", ["ch", "hublabel"])
    def test_disconnected_pairs_are_inf(self, kind):
        net = integer_network(4, node_count=40, extra_edges=10, components=2)
        reference = DistanceEngine(net, backend="dijkstra")
        oracle = DistanceEngine(net, backend=kind)
        cross = [
            (net.location_at_node(a), net.location_at_node(b))
            for a in (0, 5)
            for b in (25, 39)
        ]
        for a, b in cross:
            assert reference.distance(a, b) == INF
            assert oracle.distance(a, b) == INF
        # Same-component pairs stay finite and exact.
        for a, b in node_pairs(net, 77, 30):
            assert oracle.distance(a, b) == reference.distance(a, b)


# ----------------------------------------------------------------------
# Persistence: index file round-trip, page accounting on load
# ----------------------------------------------------------------------
class TestPersistence:
    def test_round_trip_is_lossless(self, tmp_path):
        net = integer_network(7)
        index = build_oracle_index(net, kind="hublabel")
        path = str(tmp_path / "au.oracle")
        save_oracle_index(index, path)
        loaded = load_oracle_index(path)
        assert loaded.kind == index.kind
        assert loaded.signature == index.signature
        assert loaded.order == index.order
        assert loaded.upward == index.upward
        assert loaded.labels == index.labels
        assert loaded.shortcut_count == index.shortcut_count
        assert loaded.witness_settle_limit == index.witness_settle_limit

    def test_loaded_index_answers_through_page_store(self, tmp_path):
        net = integer_network(11)
        path = str(tmp_path / "net.oracle")
        save_oracle_index(build_oracle_index(net, kind="hublabel"), path)

        engine = DistanceEngine(net, store=NetworkStore(net), backend="dijkstra")
        engine.attach_oracle(load_oracle_index(path))
        reference = DistanceEngine(net, backend="dijkstra")
        pairs = list(node_pairs(net, 13, 40))
        expected = [reference.distance(a, b) for a, b in pairs]
        with tracing.span("query.oracle-roundtrip") as root:
            for (a, b), want in zip(pairs, expected):
                assert engine.distance(a, b) == want
        totals = root.totals()
        # Oracle reads paid page accounting; online search never ran.
        assert totals.get("oracle_pages", 0) > 0
        assert totals.get("oracle_label_entries", 0) > 0
        assert totals.get("nodes_settled", 0) == 0

    def test_load_rejects_foreign_documents(self, tmp_path):
        bad = tmp_path / "bad.oracle"
        bad.write_text('{"format": "something-else", "version": 1}\n')
        with pytest.raises(OracleIndexError, match="format"):
            load_oracle_index(str(bad))
        bad.write_text("not json at all")
        with pytest.raises(OracleIndexError, match="JSON"):
            load_oracle_index(str(bad))

    def test_attach_rejects_mismatched_signature(self):
        net_a = integer_network(1)
        net_b = integer_network(2)
        index = build_oracle_index(net_a, kind="ch")
        engine = DistanceEngine(net_b, backend="dijkstra")
        with pytest.raises(OracleIndexError, match="signature"):
            engine.attach_oracle(index)
        assert network_signature(net_a) != network_signature(net_b)

    def test_store_covers_every_node(self):
        net = integer_network(5)
        index = build_oracle_index(net, kind="hublabel")
        store = OracleStore(index, net)
        for node_id in net.node_ids():
            store.touch(node_id)
        assert store.page_count >= 1
        assert store.stats.logical_reads == net.node_count


# ----------------------------------------------------------------------
# Backend selection, staleness, fallback
# ----------------------------------------------------------------------
class TestSelectionAndFallback:
    def test_non_oracle_backend_has_no_oracle(self):
        net = integer_network(3)
        engine = DistanceEngine(net, backend="dijkstra")
        a, b = next(node_pairs(net, 8, 1))
        assert engine.oracle_distance(a, b) is None
        assert engine.cache_info()["oracle"] == "none"
        assert engine.distance(a, b) < INF  # online path still answers

    def test_oracle_backend_builds_lazily(self):
        net = integer_network(3)
        engine = DistanceEngine(net, backend="hublabel")
        assert engine.cache_info()["oracle"] == "none"  # nothing built yet
        a, b = next(node_pairs(net, 8, 1))
        engine.distance(a, b)
        assert engine.cache_info()["oracle"] == "hublabel"

    def test_stale_attached_index_falls_back_online(self):
        net = integer_network(6)
        engine = DistanceEngine(net, backend="dijkstra")
        engine.attach_oracle(build_oracle_index(net, kind="hublabel"))
        a, b = next(node_pairs(net, 21, 1))
        engine.distance(a, b)

        edge_id = sorted(net.edge_ids())[0]
        net.update_edge_length(edge_id, net.edge(edge_id).length + 5.0)
        engine.invalidate_network()
        assert engine.cache_info()["oracle"] == "hublabel (stale)"

        reference = DistanceEngine(net, backend="dijkstra")
        with tracing.span("query.oracle-stale") as root:
            for a, b in node_pairs(net, 31, 20):
                # Falls back to online search against the mutated graph.
                assert engine.distance(a, b) == reference.distance(a, b)
        assert root.totals().get("oracle_fallbacks", 0) > 0

    def test_backend_owned_index_rebuilds_after_mutation(self):
        net = integer_network(6)
        engine = DistanceEngine(net, backend="ch")
        a, b = next(node_pairs(net, 21, 1))
        engine.distance(a, b)  # triggers the first build

        edge_id = sorted(net.edge_ids())[0]
        net.update_edge_length(edge_id, net.edge(edge_id).length + 7.0)
        engine.invalidate_network()
        assert engine.cache_info()["oracle"] == "none"  # old index dropped

        reference = DistanceEngine(net, backend="dijkstra")
        for a, b in node_pairs(net, 33, 20):
            assert engine.distance(a, b) == reference.distance(a, b)
        assert engine.cache_info()["oracle"] == "ch"  # rebuilt lazily

    def test_workspace_mutation_marks_attached_oracle_stale(self):
        from conftest import place_random_objects
        from repro.core import Workspace

        net = integer_network(12)
        objects = place_random_objects(net, 20, seed=2, attribute_count=1)
        workspace = Workspace.build(net, objects, paged=True)
        workspace.engine.attach_oracle(build_oracle_index(net, kind="hublabel"))
        assert workspace.engine.cache_info()["oracle"] == "hublabel"

        edge_id = sorted(net.edge_ids())[0]
        workspace.update_edge_length(edge_id, net.edge(edge_id).length + 3.0)
        assert workspace.engine.cache_info()["oracle"] == "hublabel (stale)"

    def test_object_churn_leaves_oracle_alone(self):
        from conftest import place_random_objects
        from repro.core import Workspace

        net = integer_network(12)
        objects = place_random_objects(net, 20, seed=2, attribute_count=1)
        workspace = Workspace.build(net, objects, paged=True)
        workspace.engine.attach_oracle(build_oracle_index(net, kind="hublabel"))
        workspace.remove_object(objects.objects[0].object_id)
        # Object distances never depend on the index; it stays usable.
        assert workspace.engine.cache_info()["oracle"] == "hublabel"

    def test_stale_handle_refuses_directly(self):
        net = integer_network(14)
        oracle = DistanceOracle(build_oracle_index(net, kind="ch"), net)
        a, b = next(node_pairs(net, 5, 1))
        finite = oracle.distance(a, b)
        assert finite < INF
        oracle.mark_stale()
        assert oracle.stale
