"""Text-table rendering for reproduced figures."""

from __future__ import annotations

from repro.experiments.figures import FigureSeries


def format_series(series: FigureSeries, precision: int = 4) -> str:
    """Render a figure's data as an aligned text table."""
    names = sorted(series.series)
    header = [series.x_label, *names]
    rows: list[list[str]] = []
    for i, x in enumerate(series.x_values):
        row = [_fmt(x, precision)]
        for name in names:
            row.append(_fmt(series.series[name][i], precision))
        rows.append(row)
    widths = [
        max(len(header[c]), *(len(r[c]) for r in rows)) if rows else len(header[c])
        for c in range(len(header))
    ]
    lines = [
        f"{series.figure}: {series.title}  [y = {series.y_label}]",
        "  ".join(h.rjust(w) for h, w in zip(header, widths)),
        "  ".join("-" * w for w in widths),
    ]
    for row in rows:
        lines.append("  ".join(v.rjust(w) for v, w in zip(row, widths)))
    return "\n".join(lines)


def _fmt(value, precision: int) -> str:
    if isinstance(value, float):
        return f"{value:.{precision}g}"
    return str(value)


def series_to_csv(series: FigureSeries) -> str:
    """The figure's data as CSV text (header = x label + algorithms).

    For users who want to re-plot the reproduced figures with their own
    tooling; pairs with :func:`write_series_csv`.
    """
    names = sorted(series.series)
    lines = [",".join([series.x_label, *names])]
    for i, x in enumerate(series.x_values):
        row = [str(x)] + [repr(series.series[name][i]) for name in names]
        lines.append(",".join(row))
    return "\n".join(lines) + "\n"


def write_series_csv(series: FigureSeries, path) -> None:
    """Write :func:`series_to_csv` output to ``path``."""
    from pathlib import Path

    Path(path).write_text(series_to_csv(series))


def winner_summary(series: FigureSeries) -> dict[str, int]:
    """How many x-points each algorithm wins (minimises the metric)."""
    wins: dict[str, int] = {name: 0 for name in series.series}
    for i in range(len(series.x_values)):
        best = min(series.series, key=lambda name: series.series[name][i])
        wins[best] += 1
    return wins
