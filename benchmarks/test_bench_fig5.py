"""Benchmarks regenerating Figure 5: cost vs network density.

One cold-buffer query per (algorithm, network) point, |Q| = 4, ω = 50 %.
``extra_info`` carries the three panels' y-values:

* ``network_pages``      — Fig 5(a), network disk pages accessed;
* ``modeled_total_s``    — Fig 5(b), total response time;
* ``modeled_initial_s``  — Fig 5(c), initial response time.

Expected shape (the paper's): every metric rises with density; CE rises
fastest; LBC is lowest everywhere, with a near-immediate first result.
"""

import pytest

from repro.core import CE, EDC, LBC

from conftest import attach_stats, run_cold

ALGORITHMS = {"CE": CE, "EDC": EDC, "LBC": LBC}


@pytest.mark.parametrize("network", ["CA", "AU", "NA"], ids=str)
@pytest.mark.parametrize("algo", sorted(ALGORITHMS), ids=str)
def test_fig5_cost_vs_density(benchmark, workloads, algo, network):
    """Figs 5(a)-(c): pages / total / initial response vs density."""
    workspace = workloads.workspace(network, 0.50)
    queries = workloads.queries(network, 4)
    algorithm = ALGORITHMS[algo]()
    result = benchmark.pedantic(
        run_cold, args=(workspace, algorithm, queries), rounds=2, iterations=1
    )
    attach_stats(benchmark, result)
