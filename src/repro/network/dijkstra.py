"""Resumable Dijkstra expansion with incremental nearest-object search.

CE (Section 4.1) grows a wavefront around each query point and consumes
the data objects it meets *in ascending network-distance order*.  The
:class:`DijkstraExpander` here keeps its wavefront alive between calls
("the frontier nodes on the wavefront are maintained such that the
expansion can continue from a previous state", Section 6.1) and exposes
:meth:`next_nearest_object` — the incremental-network-expansion (INE)
primitive.

Object discovery follows the middle-layer protocol of Section 3: when
the wavefront settles a junction, each incident edge is probed for the
objects lying on it; an object's tentative distance through a settled
endpoint ``w`` is ``d(source, w) + d(w, p)``.  An object is *emitted*
(its distance declared final) once its best tentative distance is no
larger than the smallest key on the node heap — at that point no
unsettled junction could open a shorter path to it.
"""

from __future__ import annotations

import math
from typing import Iterator, Protocol

from repro.index.heap import AddressableHeap
from repro.network.graph import NetworkLocation, RoadNetwork
from repro.obs import tracing
from repro.network.middle_layer import ObjectPlacement
from repro.network.objects import SpatialObject
from repro.network.storage import NetworkStore

INFINITY = math.inf


class PlacementSource(Protocol):
    """Anything that can answer "which objects are on this edge?"."""

    def objects_on(self, edge_id: int) -> list[ObjectPlacement]:
        """Middle-layer records for one edge (possibly empty)."""
        ...


class DijkstraExpander:
    """A persistent single-source Dijkstra wavefront over a road network."""

    # The engine pools thousands of expanders; slots drop the per-
    # instance __dict__ and make attribute loads in the inner relax
    # loop a fixed-offset read.
    __slots__ = (
        "_emitted",
        "_heap",
        "_last_emitted_distance",
        "_object_best",
        "_object_heap",
        "_object_of",
        "_probed_edges",
        "network",
        "nodes_settled",
        "parent",
        "placements",
        "relaxations",
        "settled",
        "source",
        "store",
    )

    def __init__(
        self,
        network: RoadNetwork,
        source: NetworkLocation,
        store: NetworkStore | None = None,
        placements: PlacementSource | None = None,
    ) -> None:
        self.network = network
        self.source = source
        self.store = store
        self.placements = placements

        self.settled: dict[int, float] = {}
        self.parent: dict[int, int | None] = {}
        self._heap: AddressableHeap[int] = AddressableHeap()
        self.nodes_settled = 0
        self.relaxations = 0

        # Object bookkeeping.
        self._object_heap: AddressableHeap[int] = AddressableHeap()
        self._object_best: dict[int, float] = {}
        self._object_of: dict[int, SpatialObject] = {}
        self._emitted: set[int] = set()
        self._probed_edges: dict[int, list[ObjectPlacement]] = {}
        self._last_emitted_distance = 0.0

        for node, dist in network.seed_frontier(source):
            if self._heap.push_or_decrease(node, dist):
                self.parent[node] = None
        # Objects sharing the source's edge are reachable along the edge
        # without passing a junction; seed their candidates directly.
        if source.edge_id is not None and placements is not None:
            for placement in self._probe(source.edge_id):
                direct = abs(placement.dist_from_u - source.offset)
                self._offer_object(placement.obj, direct)

    # ------------------------------------------------------------------
    # Node-level expansion
    # ------------------------------------------------------------------
    @property
    def exhausted(self) -> bool:
        """True when the wavefront can grow no further."""
        return len(self._heap) == 0

    def frontier_radius(self) -> float:
        """Distance at which the wavefront currently sits (inf if done).

        This is the exact distance of the *next* node to settle; every
        unsettled location lies at least this far from the source.
        """
        if self._heap:
            return self._heap.min_priority()
        return INFINITY

    def expand_next(self) -> tuple[int, float] | None:
        """Settle the single nearest unsettled node; None when exhausted."""
        if not self._heap:
            return None
        node, dist = self._heap.pop()
        self.settled[node] = dist
        self.nodes_settled += 1
        tracing.record("nodes_settled")
        if self.store is not None:
            self.store.touch_node(node)
        for neighbor, edge_id in self.network.neighbors(node):
            edge = self.network.edge(edge_id)
            if self.placements is not None:
                for placement in self._probe(edge_id):
                    self._offer_object(
                        placement.obj,
                        dist + placement.distance_from(node, self.network),
                    )
            if neighbor in self.settled:
                continue
            self.relaxations += 1
            if self._heap.push_or_decrease(neighbor, dist + edge.length):
                self.parent[neighbor] = node
        return (node, dist)

    def distance_to_node(self, node_id: int) -> float:
        """Exact network distance from the source to a junction.

        Expands as far as necessary; inf when unreachable.
        """
        while node_id not in self.settled:
            if self.expand_next() is None:
                return INFINITY
        return self.settled[node_id]

    def distance_to(self, target: NetworkLocation) -> float:
        """Exact network distance from the source to any location."""
        if target.node_id is not None:
            return self.distance_to_node(target.node_id)
        assert target.edge_id is not None
        edge = self.network.edge(target.edge_id)
        candidates = []
        direct = self.network.direct_edge_distance(self.source, target)
        if direct is not None:
            candidates.append(direct)
        via_u = self.distance_to_node(edge.u)
        via_v = self.distance_to_node(edge.v)
        candidates.append(via_u + target.offset)
        candidates.append(via_v + (edge.length - target.offset))
        return min(candidates)

    def path_to_node(self, node_id: int) -> list[int]:
        """Junction sequence of a shortest path (after settling).

        For an on-edge source the first element is the seed endpoint the
        path leaves through.
        """
        if node_id not in self.settled:
            if self.distance_to_node(node_id) == INFINITY:
                raise ValueError(f"node {node_id} is unreachable from the source")
        path: list[int] = []
        cursor: int | None = node_id
        while cursor is not None:
            path.append(cursor)
            cursor = self.parent[cursor]
        path.reverse()
        return path

    # ------------------------------------------------------------------
    # Incremental nearest-object enumeration (INE)
    # ------------------------------------------------------------------
    def _probe(self, edge_id: int) -> list[ObjectPlacement]:
        """Middle-layer probe with an in-wavefront cache.

        The disk probe (and its page charges) happens once per edge; the
        second endpoint reuses the wavefront's hash-table copy, as the
        paper's maintained-state searches do.
        """
        cached = self._probed_edges.get(edge_id)
        if cached is None:
            assert self.placements is not None
            cached = self.placements.objects_on(edge_id)
            self._probed_edges[edge_id] = cached
        return cached

    def _offer_object(self, obj: SpatialObject, distance: float) -> None:
        if obj.object_id in self._emitted:
            return
        best = self._object_best.get(obj.object_id)
        if best is not None and best <= distance:
            return
        self._object_best[obj.object_id] = distance
        self._object_of[obj.object_id] = obj
        self._object_heap.update(obj.object_id, distance)

    def next_nearest_object(self) -> tuple[SpatialObject, float] | None:
        """The next unvisited object in ascending network distance.

        Returns ``(object, network_distance)`` or None once every
        reachable object has been emitted.
        """
        if self.placements is None:
            raise RuntimeError("expander was built without a placement source")
        while True:
            if self._object_heap:
                candidate_dist = self._object_heap.min_priority()
                if not self._heap or candidate_dist <= self._heap.min_priority():
                    object_id, dist = self._object_heap.pop()
                    del self._object_best[object_id]
                    self._emitted.add(object_id)
                    self._last_emitted_distance = dist
                    return (self._object_of.pop(object_id), dist)
            if self.expand_next() is None:
                return None

    def iter_objects(self) -> Iterator[tuple[SpatialObject, float]]:
        """All reachable objects in ascending network distance."""
        while True:
            item = self.next_nearest_object()
            if item is None:
                return
            yield item

    @property
    def visited_object_count(self) -> int:
        """Objects emitted so far."""
        return len(self._emitted)

    @property
    def last_emitted_distance(self) -> float:
        """Network distance of the most recently emitted object."""
        return self._last_emitted_distance

    def has_visited(self, object_id: int) -> bool:
        return object_id in self._emitted
