"""``repro.profiling`` — span-attributed sampling profiler.

A stdlib-only statistical profiler: a daemon thread wakes every
``interval_s`` seconds, snapshots every thread's Python stack via
``sys._current_frames()``, and attributes each sample to the tracing
span (:mod:`repro.obs.tracing`) the sampled thread was executing under
at that instant.  Output is

* **per-span self time** — how many samples landed while each span was
  the *innermost* active one (the span-level flat profile the paper's
  per-phase cost breakdown corresponds to), and
* **collapsed stacks** — ``span;path;frame;frame count`` lines in the
  Brendan Gregg flamegraph-collapsed format, so any flamegraph tool
  can render where the wall time went *inside* each phase.

The exact cost counters (pages read, nodes settled) remain the domain
of the deterministic span counters; sampling adds the wall-time
dimension those counters deliberately exclude, at a measured overhead
bounded in ``benchmarks/test_bench_obs.py`` (< 10 %).
"""

from repro.profiling.sampler import (
    DEFAULT_INTERVAL_S,
    ProfileReport,
    SamplingProfiler,
    format_self_time_table,
)

__all__ = [
    "DEFAULT_INTERVAL_S",
    "ProfileReport",
    "SamplingProfiler",
    "format_self_time_table",
]
