"""Benchmarks regenerating Figure 4: candidate ratio |C|/|D|.

Each benchmark times one cold-buffer query execution and records the
candidate ratio (the figure's y-value) in ``extra_info``, so running::

    pytest benchmarks/test_bench_fig4.py --benchmark-only \
        --benchmark-columns=mean --benchmark-sort=name -q

prints the paper's series: Fig 4(a) sweeps |Q| on NA, Fig 4(b) sweeps
the object density ω on NA, Fig 4(c) sweeps the network density
(CA → AU → NA).
"""

import pytest

from repro.core import CE, EDC, LBC

from conftest import attach_stats, run_cold

ALGORITHMS = {"CE": CE, "EDC": EDC, "LBC": LBC}


@pytest.mark.parametrize("q", [2, 4, 8], ids=lambda q: f"Q{q}")
@pytest.mark.parametrize("algo", sorted(ALGORITHMS), ids=str)
def test_fig4a_candidates_vs_q(benchmark, workloads, algo, q):
    """Fig 4(a): candidate ratio vs |Q| (ω = 50 %, NA)."""
    workspace = workloads.workspace("NA", 0.50)
    queries = workloads.queries("NA", q)
    algorithm = ALGORITHMS[algo]()
    result = benchmark.pedantic(
        run_cold, args=(workspace, algorithm, queries), rounds=2, iterations=1
    )
    attach_stats(benchmark, result)


@pytest.mark.parametrize("omega", [0.05, 0.50, 2.00], ids=lambda w: f"w{int(w*100)}")
@pytest.mark.parametrize("algo", sorted(ALGORITHMS), ids=str)
def test_fig4b_candidates_vs_omega(benchmark, workloads, algo, omega):
    """Fig 4(b): candidate ratio vs ω (|Q| = 4, NA)."""
    workspace = workloads.workspace("NA", omega)
    queries = workloads.queries("NA", 4)
    algorithm = ALGORITHMS[algo]()
    result = benchmark.pedantic(
        run_cold, args=(workspace, algorithm, queries), rounds=2, iterations=1
    )
    attach_stats(benchmark, result)


@pytest.mark.parametrize("network", ["CA", "AU", "NA"], ids=str)
@pytest.mark.parametrize("algo", sorted(ALGORITHMS), ids=str)
def test_fig4c_candidates_vs_density(benchmark, workloads, algo, network):
    """Fig 4(c): candidate ratio vs network density (|Q|=4, ω=50 %)."""
    workspace = workloads.workspace(network, 0.50)
    queries = workloads.queries(network, 4)
    algorithm = ALGORITHMS[algo]()
    result = benchmark.pedantic(
        run_cold, args=(workspace, algorithm, queries), rounds=2, iterations=1
    )
    attach_stats(benchmark, result)
