"""Experiment harness reproducing every figure of the paper's Section 6.

Run everything with::

    python -m repro.experiments

or call individual figure runners (see :mod:`repro.experiments.figures`).
"""

from repro.experiments.ablations import (
    run_ablation_backend,
    run_ablation_buffer,
    run_ablation_ce_strategy,
    run_ablation_heuristic,
    run_ablation_lazy,
    run_ablation_plb,
    run_all_ablations,
)
from repro.experiments.figures import (
    DEFAULT_Q_SWEEP,
    FigureSeries,
    run_fig4a,
    run_fig4b,
    run_fig4c,
    run_fig5,
    run_fig6_omega,
    run_fig6_q,
)
from repro.experiments.harness import (
    AggregateStats,
    ExperimentConfig,
    WorkloadCache,
    run_experiment,
    shared_cache,
)
from repro.experiments.reporting import format_series, winner_summary
from repro.experiments.shapes import ShapeCheck, verify_all

__all__ = [
    "DEFAULT_Q_SWEEP",
    "AggregateStats",
    "ExperimentConfig",
    "FigureSeries",
    "WorkloadCache",
    "format_series",
    "run_ablation_backend",
    "run_ablation_buffer",
    "run_ablation_ce_strategy",
    "run_ablation_heuristic",
    "run_ablation_lazy",
    "run_ablation_plb",
    "run_all_ablations",
    "run_experiment",
    "run_fig4a",
    "run_fig4b",
    "run_fig4c",
    "run_fig5",
    "run_fig6_omega",
    "run_fig6_q",
    "shared_cache",
    "verify_all",
    "winner_summary",
    "ShapeCheck",
]
