"""Property tests: buffer policies against exact reference models."""

from collections import OrderedDict

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.storage import DEFAULT_PAGE_SIZE, BufferPool, DiskManager

accesses = st.lists(st.integers(min_value=0, max_value=14), max_size=300)
frame_counts = st.integers(min_value=1, max_value=6)


class _LRUModel:
    def __init__(self, frames):
        self.frames = frames
        self.resident = OrderedDict()
        self.misses = 0

    def fetch(self, page):
        if page in self.resident:
            self.resident.move_to_end(page)
            return
        self.misses += 1
        self.resident[page] = True
        if len(self.resident) > self.frames:
            self.resident.popitem(last=False)


class _FIFOModel:
    def __init__(self, frames):
        self.frames = frames
        self.resident = OrderedDict()
        self.misses = 0

    def fetch(self, page):
        if page in self.resident:
            return
        self.misses += 1
        self.resident[page] = True
        if len(self.resident) > self.frames:
            self.resident.popitem(last=False)


class _ClockModel:
    def __init__(self, frames):
        self.frames = frames
        self.resident = OrderedDict()  # page -> referenced bit
        self.misses = 0

    def fetch(self, page):
        if page in self.resident:
            self.resident[page] = True
            return
        self.misses += 1
        if len(self.resident) >= self.frames:
            while True:
                victim, referenced = next(iter(self.resident.items()))
                if referenced:
                    self.resident[victim] = False
                    self.resident.move_to_end(victim)
                else:
                    del self.resident[victim]
                    break
        self.resident[page] = False


MODELS = {"lru": _LRUModel, "fifo": _FIFOModel, "clock": _ClockModel}


def _run_both(policy, frames, sequence):
    disk = DiskManager()
    page_ids = [disk.allocate().page_id for _ in range(15)]
    pool = BufferPool(
        disk, capacity_bytes=DEFAULT_PAGE_SIZE * frames, policy=policy
    )
    model = MODELS[policy](frames)
    for index in sequence:
        pool.fetch(page_ids[index])
        model.fetch(page_ids[index])
    return pool, model, page_ids


@settings(max_examples=60, deadline=None)
@given(accesses, frame_counts, st.sampled_from(sorted(MODELS)))
def test_policy_matches_reference_model(sequence, frames, policy):
    pool, model, page_ids = _run_both(policy, frames, sequence)
    assert pool.stats.physical_reads == model.misses
    for page_id in page_ids:
        assert pool.is_resident(page_id) == (page_id in model.resident)


@settings(max_examples=30, deadline=None)
@given(accesses, frame_counts)
def test_clock_never_beats_repeated_lru_much(sequence, frames):
    """Sanity bound: CLOCK approximates LRU — its miss count stays
    within the FIFO/LRU envelope extremes on any workload here."""
    results = {}
    for policy in MODELS:
        pool, _, _ = _run_both(policy, frames, sequence)
        results[policy] = pool.stats.physical_reads
    # All policies share compulsory misses and never exceed the number
    # of accesses.
    distinct = len(set(sequence))
    for misses in results.values():
        assert distinct <= misses <= max(len(sequence), distinct)


@settings(max_examples=30, deadline=None)
@given(accesses, frame_counts, st.sampled_from(sorted(MODELS)))
def test_residency_bounded(sequence, frames, policy):
    pool, _, _ = _run_both(policy, frames, sequence)
    assert pool.resident_count <= frames
