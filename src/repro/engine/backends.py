"""Pluggable distance backends behind one small protocol.

A backend knows how to build a resumable single-source expander for the
engine's pool.  Three ship with the engine:

* ``"dijkstra"`` — plain Dijkstra wavefronts
  (:class:`~repro.network.dijkstra.DijkstraExpander`); the default, and
  the only backend whose expanders also support incremental
  nearest-object enumeration;
* ``"astar"`` — goal-directed A* with the Euclidean heuristic
  (:class:`~repro.network.astar.AStarExpander`);
* ``"astar+landmarks"`` — A* guided by a lazily built
  :class:`~repro.network.landmarks.LandmarkHeuristic` (ALT bounds),
  typically the fewest settled nodes on high-detour networks at the
  cost of ``count`` full Dijkstra runs of precomputation;
* ``"ch"`` / ``"hublabel"`` — preprocessed distance oracles
  (:mod:`repro.oracle`): a contraction hierarchy queried by
  bidirectional upward search, or hub labels answering in one merge
  scan.  These backends own a lazily built
  :class:`~repro.oracle.runtime.DistanceOracle` the engine consults
  *before* any expander; their ``make_expander`` returns a plain
  Dijkstra wavefront, which is the online fallback when no usable
  index exists (e.g. right after a network mutation).

Every backend returns *exact* distances; they differ only in how much
network they touch to settle them, which is why the engine's memo can
share entries across backends.  (Oracle answers may differ from online
search in the last floating-point bit on irrational edge lengths —
shortcut weights are pre-summed, so addition associates differently;
see ``docs/preprocessing.md``.)
"""

from __future__ import annotations

from typing import Protocol, runtime_checkable

from repro.network.astar import AStarExpander
from repro.network.dijkstra import DijkstraExpander
from repro.network.graph import NetworkLocation, RoadNetwork
from repro.network.landmarks import LandmarkHeuristic
from repro.network.storage import NetworkStore
from repro.obs import tracing
from repro.oracle import build_oracle_index
from repro.oracle.runtime import DistanceOracle
from repro.oracle.store import OracleStore

DEFAULT_BACKEND = "dijkstra"
DEFAULT_LANDMARK_COUNT = 8

ORACLE_BACKEND_NAMES = ("ch", "hublabel")
"""Backends whose distances come from a preprocessed oracle index."""


def mirror_oracle_store(
    index, network: RoadNetwork, store: NetworkStore | None
) -> OracleStore | None:
    """An :class:`OracleStore` sized like the workspace's network store.

    An unstored network means the caller opted out of page accounting
    entirely; the oracle follows suit and returns ``None``.
    """
    if store is None:
        return None
    page_size = store.disk.page_size
    return OracleStore(
        index,
        network,
        page_size=page_size,
        buffer_bytes=store.pool.frame_count * page_size,
    )


@runtime_checkable
class DistanceBackend(Protocol):
    """What the engine needs from a backend: named expander factories."""

    name: str

    def make_expander(self, source: NetworkLocation):
        """A fresh resumable expander rooted at ``source``.

        The returned object must expose ``distance_to(location)`` and a
        monotone ``nodes_settled`` counter.
        """
        ...

    def reset(self) -> None:
        """Drop any derived data invalidated by a network mutation."""
        ...


class DijkstraBackend:
    """Plain Dijkstra wavefronts — the paper's CE substrate."""

    name = "dijkstra"

    def __init__(self, network: RoadNetwork, store: NetworkStore | None = None):
        self.network = network
        self.store = store

    def make_expander(self, source: NetworkLocation) -> DijkstraExpander:
        return DijkstraExpander(self.network, source, store=self.store)

    def reset(self) -> None:  # no derived state
        return None


class AStarBackend:
    """Euclidean-guided A* — the paper's EDC/LBC substrate."""

    name = "astar"

    def __init__(self, network: RoadNetwork, store: NetworkStore | None = None):
        self.network = network
        self.store = store

    def heuristic(self):
        """The consistent heuristic shared by this backend's expanders."""
        return None

    def make_expander(self, source: NetworkLocation) -> AStarExpander:
        return AStarExpander(
            self.network, source, store=self.store, heuristic=self.heuristic()
        )

    def reset(self) -> None:
        return None


class AStarLandmarksBackend(AStarBackend):
    """A* with ALT (landmark) lower bounds, built on first use.

    The landmark tables are precomputation (``count`` full Dijkstra
    runs), so they are shared across every expander the backend makes
    and rebuilt only after a network mutation invalidates them.
    """

    name = "astar+landmarks"

    def __init__(
        self,
        network: RoadNetwork,
        store: NetworkStore | None = None,
        landmark_count: int = DEFAULT_LANDMARK_COUNT,
        landmark_seed: int = 0,
    ):
        super().__init__(network, store)
        self.landmark_count = landmark_count
        self.landmark_seed = landmark_seed
        self._landmarks: LandmarkHeuristic | None = None

    def heuristic(self) -> LandmarkHeuristic:
        if self._landmarks is None:
            # Amortised precomputation shared by every later query; the
            # suppression keeps its Dijkstra runs off whichever query's
            # trace span happened to trigger the build.
            with tracing.suppressed():
                self._landmarks = LandmarkHeuristic(
                    self.network,
                    count=max(1, min(self.landmark_count, self.network.node_count)),
                    seed=self.landmark_seed,
                )
        return self._landmarks

    def reset(self) -> None:
        self._landmarks = None


class ChBackend:
    """Contraction-hierarchy oracle with a Dijkstra online fallback.

    The backend owns a lazily built :class:`DistanceOracle`; the engine
    asks for it via :meth:`oracle` before falling back to the expander
    this backend makes.  The build runs under
    :func:`~repro.obs.tracing.suppressed` so preprocessing cost never
    lands on the query span that happened to trigger it — the same
    amortisation contract as the landmark backend.  A network mutation
    resets the handle; the next query rebuilds against the new graph.
    """

    name = "ch"
    kind = "ch"

    def __init__(self, network: RoadNetwork, store: NetworkStore | None = None):
        self.network = network
        self.store = store
        self._oracle: DistanceOracle | None = None

    def oracle(self) -> DistanceOracle:
        if self._oracle is None:
            with tracing.suppressed():
                index = build_oracle_index(self.network, kind=self.kind)
            self._oracle = DistanceOracle(
                index,
                self.network,
                store=mirror_oracle_store(index, self.network, self.store),
            )
        return self._oracle

    def oracle_if_built(self) -> DistanceOracle | None:
        """The handle without triggering a build (engine peek path)."""
        return self._oracle

    def make_expander(self, source: NetworkLocation) -> DijkstraExpander:
        # Online fallback: when the engine cannot (or must not) answer
        # from the index, distances resolve from a plain wavefront.
        return DijkstraExpander(self.network, source, store=self.store)

    def reset(self) -> None:
        self._oracle = None


class HubLabelBackend(ChBackend):
    """Hub labels on top of the CH: one merge scan per node pair."""

    name = "hublabel"
    kind = "hublabel"


BACKENDS: dict[str, type] = {
    DijkstraBackend.name: DijkstraBackend,
    AStarBackend.name: AStarBackend,
    AStarLandmarksBackend.name: AStarLandmarksBackend,
    ChBackend.name: ChBackend,
    HubLabelBackend.name: HubLabelBackend,
}

BACKEND_NAMES = tuple(sorted(BACKENDS))


def make_backend(
    name: str,
    network: RoadNetwork,
    store: NetworkStore | None = None,
    landmark_count: int = DEFAULT_LANDMARK_COUNT,
    landmark_seed: int = 0,
) -> DistanceBackend:
    """Instantiate a backend by name (ValueError for unknown names)."""
    cls = BACKENDS.get(name)
    if cls is None:
        raise ValueError(
            f"unknown distance backend {name!r}; choose from {BACKEND_NAMES}"
        )
    if cls is AStarLandmarksBackend:
        return cls(
            network,
            store=store,
            landmark_count=landmark_count,
            landmark_seed=landmark_seed,
        )
    return cls(network, store=store)
