"""``repro insight`` — turn telemetry exhaust into answers.

Subcommands:

* ``summarize <source>`` — cohort digests of one wide-event JSONL log,
  saved insight report, or ``BENCH_``/``SCALING_`` artifact;
* ``compare <baseline> <current>`` — diff two sources cohort-by-cohort
  with per-counter attribution; the CI gate;
* ``top <source>`` — the slowest events with trace ids for follow-up
  with ``repro trace`` / ``repro blackbox``.

Exit codes follow ``repro bench``: 0 clean, 1 regression, 2 the
comparison itself could not run (missing file, foreign schema).
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Sequence

from repro.insight.analyze import (
    DEFAULT_COUNTER_FLOOR,
    DEFAULT_COUNTER_THRESHOLD,
    DEFAULT_EXEMPLARS,
    DEFAULT_LATENCY_FLOOR_S,
    DEFAULT_LATENCY_THRESHOLD,
    DEFAULT_MIN_COUNT,
    compare_summaries,
    load_summary,
    top_events,
)
from repro.insight.gate import EXIT_ERROR, EXIT_OK, EXIT_REGRESSION
from repro.insight.report import format_diff, format_summary, format_top
from repro.obs.events import iter_events


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro insight",
        description="cohort digests and regression detection over "
        "wide-event logs and bench artifacts",
    )
    sub = parser.add_subparsers(dest="insight_command", required=True)

    summarize = sub.add_parser(
        "summarize", help="cohort digests of one event log or artifact"
    )
    summarize.add_argument(
        "source", help="events.jsonl, insight report, or BENCH artifact"
    )
    summarize.add_argument(
        "--json", action="store_true", help="print the report as JSON"
    )
    summarize.add_argument(
        "--out", help="also write the JSON report here (for later compare)"
    )
    summarize.add_argument(
        "--exemplars",
        type=int,
        default=DEFAULT_EXEMPLARS,
        help="slow exemplars kept per cohort (default: %(default)s)",
    )

    compare = sub.add_parser(
        "compare", help="diff two sources; exit 1 on regression"
    )
    compare.add_argument("baseline")
    compare.add_argument("current")
    compare.add_argument(
        "--json", action="store_true", help="print the diff as JSON"
    )
    compare.add_argument(
        "--out", help="also write the JSON diff here"
    )
    compare.add_argument(
        "--threshold",
        type=float,
        default=DEFAULT_COUNTER_THRESHOLD,
        help="relative counter growth that fails (default: %(default)s)",
    )
    compare.add_argument(
        "--counter-floor",
        type=float,
        default=DEFAULT_COUNTER_FLOOR,
        help="absolute counter growth below which noise wins "
        "(default: %(default)s)",
    )
    compare.add_argument(
        "--latency-threshold",
        type=float,
        default=DEFAULT_LATENCY_THRESHOLD,
        help="relative latency growth that fails (default: %(default)s)",
    )
    compare.add_argument(
        "--latency-floor",
        type=float,
        default=DEFAULT_LATENCY_FLOOR_S,
        help="absolute latency growth (seconds) below which noise wins "
        "(default: %(default)s)",
    )
    compare.add_argument(
        "--min-count",
        type=int,
        default=DEFAULT_MIN_COUNT,
        help="events both sides need before a cohort is gated "
        "(default: %(default)s)",
    )
    compare.add_argument(
        "--advisory-latency",
        action="store_true",
        help="latency regressions warn instead of fail (use when the "
        "two sources ran on different machines, e.g. CI vs a "
        "committed baseline — wall clocks do not compare, counters do)",
    )

    top = sub.add_parser(
        "top", help="the slowest events, with trace ids"
    )
    top.add_argument("source", help="events.jsonl (rotations included)")
    top.add_argument(
        "-k", type=int, default=10, help="events listed (default: %(default)s)"
    )
    top.add_argument(
        "--cohort",
        help="only events whose cohort key contains this substring "
        "(e.g. 'EDC' or '|Q|[4,8)')",
    )
    top.add_argument(
        "--json", action="store_true", help="print the events as JSON"
    )

    return parser


def _cmd_summarize(args) -> int:
    try:
        summary = load_summary(args.source, exemplars=args.exemplars)
    except (OSError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return EXIT_ERROR
    payload = summary.to_dict()
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=1, sort_keys=True)
    if args.json:
        print(json.dumps(payload, indent=1, sort_keys=True))
    else:
        print(format_summary(summary))
        if args.out:
            print(f"wrote {args.out}")
    return EXIT_OK


def _cmd_compare(args) -> int:
    try:
        baseline = load_summary(args.baseline)
        current = load_summary(args.current)
    except (OSError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return EXIT_ERROR
    diff = compare_summaries(
        baseline,
        current,
        counter_threshold=args.threshold,
        counter_floor=args.counter_floor,
        latency_threshold=args.latency_threshold,
        latency_floor_s=args.latency_floor,
        min_count=args.min_count,
        advisory_latency=args.advisory_latency,
    )
    payload = diff.to_dict()
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=1, sort_keys=True)
    if args.json:
        print(json.dumps(payload, indent=1, sort_keys=True))
    else:
        print(format_diff(diff))
        if args.out:
            print(f"wrote {args.out}")
    return EXIT_OK if diff.ok else EXIT_REGRESSION


def _cmd_top(args) -> int:
    import os

    if not os.path.exists(args.source):
        print(f"error: no such file: {args.source}", file=sys.stderr)
        return EXIT_ERROR
    reader = iter_events(args.source)
    events = top_events(reader, k=args.k, cohort=args.cohort)
    if args.json:
        print(json.dumps(events, indent=1, sort_keys=True))
    else:
        print(format_top(events))
        if reader.corrupt_lines:
            print(
                f"(skipped {reader.corrupt_lines} corrupt/partial line(s))"
            )
    return EXIT_OK


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    handlers = {
        "summarize": _cmd_summarize,
        "compare": _cmd_compare,
        "top": _cmd_top,
    }
    return handlers[args.insight_command](args)


if __name__ == "__main__":
    raise SystemExit(main())
