"""Unit and property tests for the B+-tree."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.index import BPlusTree
from repro.storage import NodePager


class TestBPlusTreeBasics:
    def test_empty_tree(self):
        tree = BPlusTree(order=4)
        assert len(tree) == 0
        assert tree.key_count == 0
        assert tree.search(1) == []
        assert not tree.contains(1)
        assert tree.height() == 1

    def test_insert_and_search(self):
        tree = BPlusTree(order=4)
        tree.insert(5, "five")
        tree.insert(3, "three")
        assert tree.search(5) == ["five"]
        assert tree.search(3) == ["three"]
        assert tree.search(4) == []

    def test_duplicate_keys_bucket(self):
        tree = BPlusTree(order=4)
        tree.insert(1, "a")
        tree.insert(1, "b")
        assert tree.search(1) == ["a", "b"]
        assert len(tree) == 2
        assert tree.key_count == 1

    def test_order_too_small_rejected(self):
        with pytest.raises(ValueError):
            BPlusTree(order=2)

    def test_split_grows_height(self):
        tree = BPlusTree(order=3)
        for i in range(20):
            tree.insert(i, i)
        assert tree.height() >= 2
        tree.validate()

    def test_items_sorted(self):
        tree = BPlusTree(order=4)
        for key in [5, 1, 9, 3, 7]:
            tree.insert(key, key * 10)
        assert [k for k, _ in tree.items()] == [1, 3, 5, 7, 9]

    def test_keys_distinct(self):
        tree = BPlusTree(order=4)
        for key in [2, 2, 1, 3, 3, 3]:
            tree.insert(key, key)
        assert list(tree.keys()) == [1, 2, 3]


class TestRangeSearch:
    def make_tree(self, order=4):
        tree = BPlusTree(order=order)
        for key in range(0, 100, 2):  # even keys 0..98
            tree.insert(key, str(key))
        return tree

    def test_inclusive_bounds(self):
        tree = self.make_tree()
        got = [k for k, _ in tree.range_search(10, 20)]
        assert got == [10, 12, 14, 16, 18, 20]

    def test_bounds_between_keys(self):
        tree = self.make_tree()
        got = [k for k, _ in tree.range_search(9, 15)]
        assert got == [10, 12, 14]

    def test_empty_range(self):
        tree = self.make_tree()
        assert list(tree.range_search(11, 11)) == []

    def test_inverted_range(self):
        tree = self.make_tree()
        assert list(tree.range_search(20, 10)) == []

    def test_full_range(self):
        tree = self.make_tree()
        assert len(list(tree.range_search(-5, 1000))) == 50

    def test_range_with_duplicates(self):
        tree = BPlusTree(order=4)
        for _ in range(3):
            tree.insert(5, "x")
        assert len(list(tree.range_search(5, 5))) == 3


class TestBulkLoad:
    def test_bulk_load_small(self):
        tree = BPlusTree.bulk_load([(2, "b"), (1, "a")], order=4)
        assert tree.search(1) == ["a"]
        assert tree.search(2) == ["b"]
        tree.validate()

    def test_bulk_load_empty(self):
        tree = BPlusTree.bulk_load([], order=4)
        assert len(tree) == 0

    def test_bulk_load_large_matches_inserts(self):
        rng = random.Random(1)
        pairs = [(rng.randrange(500), i) for i in range(1000)]
        bulk = BPlusTree.bulk_load(pairs, order=8)
        bulk.validate()
        incremental = BPlusTree(order=8)
        incremental.insert_many(pairs)
        incremental.validate()
        for key in range(500):
            assert sorted(bulk.search(key)) == sorted(incremental.search(key))

    def test_bulk_load_supports_later_inserts(self):
        tree = BPlusTree.bulk_load([(i, i) for i in range(100)], order=6)
        tree.insert(1000, "late")
        tree.validate()
        assert tree.search(1000) == ["late"]


class TestPagedBPlusTree:
    def test_search_charges_pages(self):
        pager = NodePager()
        tree = BPlusTree.bulk_load(
            [(i, i) for i in range(500)], order=8, pager=pager
        )
        before = pager.stats.logical_reads
        tree.search(250)
        after = pager.stats.logical_reads
        # One page per level, at least root + leaf.
        assert after - before >= 2
        assert after - before <= tree.height()

    def test_deeper_tree_costs_more_pages(self):
        flat_pager, deep_pager = NodePager(), NodePager()
        pairs = [(i, i) for i in range(800)]
        flat = BPlusTree.bulk_load(pairs, order=128, pager=flat_pager)
        deep = BPlusTree.bulk_load(pairs, order=4, pager=deep_pager)
        flat_pager.pool.reset_stats()
        deep_pager.pool.reset_stats()
        flat.search(400)
        deep.search(400)
        assert (
            deep_pager.stats.logical_reads > flat_pager.stats.logical_reads
        )


class TestBPlusTreeProperties:
    @settings(max_examples=60, deadline=None)
    @given(
        st.lists(
            st.tuples(st.integers(min_value=0, max_value=200), st.integers()),
            max_size=300,
        ),
        st.integers(min_value=3, max_value=12),
    )
    def test_matches_dict_model(self, pairs, order):
        tree = BPlusTree(order=order)
        model: dict[int, list[int]] = {}
        for key, value in pairs:
            tree.insert(key, value)
            model.setdefault(key, []).append(value)
        tree.validate()
        for key in range(0, 201, 7):
            assert tree.search(key) == model.get(key, [])
        assert list(tree.keys()) == sorted(model)
        assert len(tree) == sum(len(v) for v in model.values())

    @settings(max_examples=40, deadline=None)
    @given(
        st.lists(st.integers(min_value=0, max_value=100), max_size=200),
        st.integers(min_value=0, max_value=100),
        st.integers(min_value=0, max_value=100),
    )
    def test_range_search_matches_filter(self, keys, low, high):
        tree = BPlusTree(order=5)
        for key in keys:
            tree.insert(key, key)
        got = [k for k, _ in tree.range_search(low, high)]
        expected = sorted(k for k in keys if low <= k <= high)
        assert got == expected
