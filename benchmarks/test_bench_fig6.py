"""Benchmarks regenerating Figure 6: sweeps over |Q| and ω on NA.

``extra_info`` carries the panels' y-values:

* Figs 6(a)/(d): ``network_pages``;
* Figs 6(b)/(e): ``modeled_total_s``;
* Figs 6(c)/(f): ``modeled_initial_s``.

Expected shape: roughly linear growth in |Q| for every algorithm (LBC's
initial response stays flat — it only involves the source query point);
near-flat behaviour in ω (object density is not a major cost factor).
"""

import pytest

from repro.core import CE, EDC, LBC

from conftest import attach_stats, run_cold

ALGORITHMS = {"CE": CE, "EDC": EDC, "LBC": LBC}


@pytest.mark.parametrize("q", [2, 4, 8, 15], ids=lambda q: f"Q{q}")
@pytest.mark.parametrize("algo", sorted(ALGORITHMS), ids=str)
def test_fig6abc_cost_vs_q(benchmark, workloads, algo, q):
    """Figs 6(a)-(c): pages / total / initial response vs |Q| (ω=50 %)."""
    workspace = workloads.workspace("NA", 0.50)
    queries = workloads.queries("NA", q)
    algorithm = ALGORITHMS[algo]()
    result = benchmark.pedantic(
        run_cold, args=(workspace, algorithm, queries), rounds=2, iterations=1
    )
    attach_stats(benchmark, result)


@pytest.mark.parametrize(
    "omega", [0.05, 0.20, 0.50, 1.00, 2.00], ids=lambda w: f"w{int(w*100)}"
)
@pytest.mark.parametrize("algo", sorted(ALGORITHMS), ids=str)
def test_fig6def_cost_vs_omega(benchmark, workloads, algo, omega):
    """Figs 6(d)-(f): pages / total / initial response vs ω (|Q|=4)."""
    workspace = workloads.workspace("NA", omega)
    queries = workloads.queries("NA", 4)
    algorithm = ALGORITHMS[algo]()
    result = benchmark.pedantic(
        run_cold, args=(workspace, algorithm, queries), rounds=2, iterations=1
    )
    attach_stats(benchmark, result)
