"""Tests for the network/object text file format."""

import pytest

from repro.datasets import (
    NetworkFormatError,
    load_network,
    load_objects,
    save_network,
    save_objects,
)
from repro.network import ObjectSet, SpatialObject

from conftest import build_random_network, place_random_objects


class TestNetworkRoundTrip:
    def test_round_trip_preserves_structure(self, tmp_path):
        original = build_random_network(40, 25, seed=401, detour_max=0.5)
        path = tmp_path / "net.net"
        save_network(original, path)
        loaded = load_network(path)
        assert loaded.node_count == original.node_count
        assert loaded.edge_count == original.edge_count
        for node_id in original.node_ids():
            assert loaded.node_point(node_id) == original.node_point(node_id)
        for edge_id in original.edge_ids():
            a, b = original.edge(edge_id), loaded.edge(edge_id)
            assert (a.u, a.v) == (b.u, b.v)
            assert a.length == b.length
        loaded.validate()

    def test_round_trip_distances_identical(self, tmp_path):
        from repro.network import network_distance

        original = build_random_network(30, 15, seed=402)
        path = tmp_path / "net.net"
        save_network(original, path)
        loaded = load_network(path)
        a = original.location_at_node(0)
        b = original.location_at_node(17)
        a2 = loaded.location_at_node(0)
        b2 = loaded.location_at_node(17)
        assert network_distance(original, a, b) == pytest.approx(
            network_distance(loaded, a2, b2)
        )

    def test_comments_and_blank_lines_ignored(self, tmp_path):
        path = tmp_path / "net.net"
        path.write_text(
            "# a comment\n"
            "\n"
            "node 0 0.0 0.0  # trailing comment\n"
            "node 1 1.0 0.0\n"
            "edge 0 0 1 1.0\n"
        )
        net = load_network(path)
        assert net.node_count == 2
        assert net.edge_count == 1

    def test_unknown_record_rejected_with_line(self, tmp_path):
        path = tmp_path / "net.net"
        path.write_text("node 0 0.0 0.0\nvertex 1 1.0 1.0\n")
        with pytest.raises(NetworkFormatError) as err:
            load_network(path)
        assert err.value.line_number == 2

    def test_wrong_field_count_rejected(self, tmp_path):
        path = tmp_path / "net.net"
        path.write_text("node 0 0.0\n")
        with pytest.raises(NetworkFormatError):
            load_network(path)

    def test_edge_to_missing_node_rejected(self, tmp_path):
        path = tmp_path / "net.net"
        path.write_text("node 0 0.0 0.0\nedge 0 0 9 1.0\n")
        with pytest.raises(NetworkFormatError):
            load_network(path)

    def test_short_edge_rejected(self, tmp_path):
        path = tmp_path / "net.net"
        path.write_text(
            "node 0 0.0 0.0\nnode 1 1.0 0.0\nedge 0 0 1 0.5\n"
        )
        with pytest.raises(NetworkFormatError):
            load_network(path)


class TestObjectRoundTrip:
    def test_round_trip(self, tmp_path):
        network = build_random_network(30, 20, seed=403)
        objects = place_random_objects(network, 25, seed=404, attribute_count=2)
        net_path = tmp_path / "n.net"
        obj_path = tmp_path / "o.obj"
        save_network(network, net_path)
        save_objects(objects, obj_path)
        loaded_net = load_network(net_path)
        loaded = load_objects(loaded_net, obj_path)
        assert len(loaded) == len(objects)
        for obj in objects:
            twin = loaded.get(obj.object_id)
            assert twin.location.edge_id == obj.location.edge_id
            assert twin.location.offset == pytest.approx(obj.location.offset)
            assert twin.attributes == obj.attributes

    def test_skyline_answers_survive_round_trip(self, tmp_path):
        from repro.core import LBC, Workspace

        network = build_random_network(40, 25, seed=405)
        objects = place_random_objects(network, 20, seed=406)
        queries = [network.location_at_node(3), network.location_at_node(30)]
        original = LBC().run(Workspace.build(network, objects, paged=False), queries)

        save_network(network, tmp_path / "n.net")
        save_objects(objects, tmp_path / "o.obj")
        loaded_net = load_network(tmp_path / "n.net")
        loaded_objects = load_objects(loaded_net, tmp_path / "o.obj")
        loaded_queries = [
            loaded_net.location_at_node(3),
            loaded_net.location_at_node(30),
        ]
        reloaded = LBC().run(
            Workspace.build(loaded_net, loaded_objects, paged=False), loaded_queries
        )
        assert reloaded.same_answer(original)

    def test_node_resident_object_serialises_via_edge(self, tmp_path):
        network = build_random_network(20, 10, seed=407)
        node_id = next(
            v for v in network.node_ids() if network.degree(v) > 0
        )
        objects = ObjectSet.build(
            network,
            [SpatialObject(0, network.location_at_node(node_id))],
        )
        save_objects(objects, tmp_path / "o.obj")
        loaded = load_objects(network, tmp_path / "o.obj")
        assert loaded.get(0).point == objects.get(0).point

    def test_bad_object_record_rejected(self, tmp_path):
        network = build_random_network(10, 5, seed=408)
        path = tmp_path / "o.obj"
        path.write_text("object 0 99999 0.5\n")
        with pytest.raises(NetworkFormatError):
            load_objects(network, path)

    def test_negative_offset_rejected(self, tmp_path):
        network = build_random_network(10, 5, seed=409)
        path = tmp_path / "o.obj"
        path.write_text("object 0 0 -0.5\n")
        with pytest.raises(NetworkFormatError):
            load_objects(network, path)


class TestColumnFiles:
    def test_round_trip_interleaved_chunks(self, tmp_path):
        from array import array

        from repro.datasets import ColumnFile, ColumnFileWriter

        path = tmp_path / "data.cols"
        with ColumnFileWriter(path, ["x", "y"], 5) as writer:
            writer.write("x", [1.0, 2.0])
            writer.write("y", array("d", [10.0, 20.0, 30.0]))
            writer.write("x", [3.0, 4.0, 5.0])
            writer.write("y", [40.0, 50.0])
        with ColumnFile(path) as cols:
            assert len(cols) == 5
            assert cols.columns == ["x", "y"]
            x = cols.column("x")
            y = cols.column("y")
            assert list(x) == [1.0, 2.0, 3.0, 4.0, 5.0]
            assert list(y) == [10.0, 20.0, 30.0, 40.0, 50.0]
            chunked = []
            for chunk in cols.chunks("x", chunk_size=2):
                chunked.extend(chunk)
                chunk.release()
            assert chunked == list(x)
            x.release()
            y.release()

    def test_generator_streams_deterministically(self, tmp_path):
        from repro.datasets import ColumnFile, stream_object_columns

        a = stream_object_columns(
            tmp_path / "a.cols", 1000, attribute_count=2, seed=5, chunk_size=64
        )
        b = stream_object_columns(
            tmp_path / "b.cols", 1000, attribute_count=2, seed=5, chunk_size=64
        )
        assert a.read_bytes() == b.read_bytes()
        with ColumnFile(a) as cols:
            assert cols.columns == ["x", "y", "a0", "a1"]
            for name in cols.columns:
                view = cols.column(name)
                assert len(view) == 1000
                view.release()

    def test_short_column_rejected_at_close(self, tmp_path):
        from repro.datasets import ColumnFileError, ColumnFileWriter

        writer = ColumnFileWriter(tmp_path / "short.cols", ["x"], 3)
        writer.write("x", [1.0])
        with pytest.raises(ColumnFileError, match="short of 3 rows"):
            writer.close()

    def test_overflow_unknown_column_and_bad_header(self, tmp_path):
        from repro.datasets import ColumnFile, ColumnFileError, ColumnFileWriter

        path = tmp_path / "data.cols"
        writer = ColumnFileWriter(path, ["x"], 2)
        with pytest.raises(ColumnFileError, match="unknown column"):
            writer.write("nope", [1.0])
        with pytest.raises(ColumnFileError, match="overflows"):
            writer.write("x", [1.0, 2.0, 3.0])
        writer.write("x", [1.0, 2.0])
        writer.close()

        with ColumnFile(path) as cols:
            with pytest.raises(ColumnFileError, match="no column"):
                cols.column("nope")

        bad = tmp_path / "bad.cols"
        bad.write_bytes(b"\x00" * 8192)
        with pytest.raises(ColumnFileError):
            ColumnFile(bad)
        truncated = tmp_path / "trunc.cols"
        truncated.write_bytes(path.read_bytes()[:-8])
        with pytest.raises(ColumnFileError, match="bytes"):
            ColumnFile(truncated)

    def test_writer_validates_roster(self, tmp_path):
        from repro.datasets import ColumnFileError, ColumnFileWriter

        with pytest.raises(ColumnFileError, match="at least one column"):
            ColumnFileWriter(tmp_path / "no.cols", [], 1)
        with pytest.raises(ColumnFileError, match="duplicate"):
            ColumnFileWriter(tmp_path / "dup.cols", ["x", "x"], 1)
        with pytest.raises(ColumnFileError, match="negative"):
            ColumnFileWriter(tmp_path / "neg.cols", ["x"], -1)
