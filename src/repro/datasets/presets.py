"""The CA / AU / NA dataset presets.

The paper's three real road networks, with their roles in the
experiments, and our synthetic stand-ins:

==========  ========  ========  ===========  =================================
dataset     paper |V|  paper |E|  |E|/|V|     role
==========  ========  ========  ===========  =================================
CA          3 044     3 607     1.185        low density, large δ
AU          23 269    30 289    1.302        medium density
NA          86 318    103 042   1.194        high density, small δ; merged
                                             from several sub-networks
==========  ========  ========  ===========  =================================

Node counts default to a scaled-down size (pure-Python substrate); pass
``scale=1.0`` to build full-size networks.  What the experiments sweep
is *density* (edges per fixed 1 km x 1 km area), which the presets
preserve by construction: same region, increasing node counts.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.datasets.generators import delaunay_road_network
from repro.network.graph import RoadNetwork

DEFAULT_SCALE = 0.10
"""Default fraction of the paper's node counts (laptop-friendly)."""


@dataclass(frozen=True)
class NetworkPreset:
    """Recipe for one of the paper's dataset stand-ins."""

    name: str
    paper_nodes: int
    paper_edges: int
    patches: int
    detour_jitter: tuple[float, float]
    short_extra_share: float

    @property
    def edge_node_ratio(self) -> float:
        return self.paper_edges / self.paper_nodes

    def build(self, scale: float = DEFAULT_SCALE, seed: int = 7) -> RoadNetwork:
        """Generate the stand-in network at the given scale."""
        if scale <= 0:
            raise ValueError(f"scale must be positive, got {scale}")
        node_count = max(16, int(round(self.paper_nodes * scale)))
        return delaunay_road_network(
            node_count=node_count,
            edge_node_ratio=self.edge_node_ratio,
            seed=seed,
            patches=self.patches,
            detour_jitter=self.detour_jitter,
            short_extra_share=self.short_extra_share,
        )


CA = NetworkPreset(
    name="CA",
    paper_nodes=3044,
    paper_edges=3607,
    patches=1,
    # Sparse rural roads twist more; this nudges δ upward on top of the
    # detours the thin topology already forces.
    detour_jitter=(1.02, 1.18),
    # Extras are local shortcuts only: long-range routing stays poor,
    # so δ is large — the paper's low-density regime.
    short_extra_share=1.0,
)

AU = NetworkPreset(
    name="AU",
    paper_nodes=23269,
    paper_edges=30289,
    patches=1,
    detour_jitter=(1.01, 1.10),
    short_extra_share=0.6,
)

NA = NetworkPreset(
    name="NA",
    paper_nodes=86318,
    paper_edges=103042,
    patches=4,  # "merged from multiple originally separated road networks"
    detour_jitter=(1.0, 1.06),
    # Extras span all length scales (highway-like links): rich route
    # choice, small δ — the paper's high-density regime.
    short_extra_share=0.0,
)

PRESETS: dict[str, NetworkPreset] = {"CA": CA, "AU": AU, "NA": NA}
DENSITY_ORDER = ("CA", "AU", "NA")
"""Presets in increasing network density, as in Figures 4(c) and 5."""


def build_preset(
    name: str, scale: float = DEFAULT_SCALE, seed: int = 7
) -> RoadNetwork:
    """Build a preset network by name ("CA", "AU" or "NA")."""
    try:
        preset = PRESETS[name.upper()]
    except KeyError:
        raise ValueError(
            f"unknown preset {name!r}; choose from {sorted(PRESETS)}"
        ) from None
    return preset.build(scale=scale, seed=seed)
