"""Offline telemetry analysis: cohort digests, diffs, regression gates.

This is the half of the insight plane that *reads back* what the
diagnostics plane wrote: wide-event JSONL logs (:mod:`repro.obs.
events`), previously saved insight reports, and ``BENCH_``/
``SCALING_`` artifacts (:mod:`repro.bench`) all load into one common
shape — a :class:`InsightSummary` holding one :class:`CohortDigest`
per cohort — and one comparator diffs any two of them with per-cohort,
per-counter attribution and a noise-aware gate.

Aggregation here is **exact** (the whole log is on disk; there is no
reason to approximate), which is what makes it the reference the live
sketch digests are tested against: live ``/insightz`` must agree with
:func:`summarize_events` over the same events within the sketch's
documented ``alpha`` bound.

Exposed as ``repro insight summarize|compare|top`` with ``repro
bench``-style exit codes (see :mod:`repro.insight.gate`).
"""

from __future__ import annotations

import heapq
import json
import math
import os
from dataclasses import dataclass, field
from typing import Iterable

from repro.insight.cohort import cohort_of_event
from repro.insight.gate import format_growth, is_regression
from repro.insight.sketch import DIGEST_QUANTILES, exact_quantile
from repro.obs import tracing
from repro.obs.events import iter_events

INSIGHT_SCHEMA = "repro-insight"
INSIGHT_SCHEMA_VERSION = 1

DEFAULT_EXEMPLARS = 3
DEFAULT_COUNTER_THRESHOLD = 0.25
DEFAULT_COUNTER_FLOOR = 1.0
DEFAULT_LATENCY_THRESHOLD = 0.5
DEFAULT_LATENCY_FLOOR_S = 0.005
DEFAULT_MIN_COUNT = 1

_GATED_LATENCY_STATS = ("p50", "p99")


@dataclass
class CohortDigest:
    """Exact per-cohort aggregates over one event source."""

    count: int = 0
    latency_s: dict[str, float] = field(default_factory=dict)
    counters: dict[str, dict[str, float]] = field(default_factory=dict)
    slowest: list[dict] = field(default_factory=list)

    def to_dict(self) -> dict:
        return {
            "count": self.count,
            "latency_s": dict(self.latency_s),
            "counters": {k: dict(v) for k, v in sorted(self.counters.items())},
            "slowest": list(self.slowest),
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "CohortDigest":
        return cls(
            count=int(payload.get("count", 0)),
            latency_s=dict(payload.get("latency_s", {})),
            counters={
                k: dict(v) for k, v in payload.get("counters", {}).items()
            },
            slowest=list(payload.get("slowest", [])),
        )


@dataclass
class InsightSummary:
    """One analyzed event source: cohorts plus provenance."""

    source: str = ""
    kind: str = "events"
    events: int = 0
    corrupt_lines: int = 0
    cohorts: dict[str, CohortDigest] = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {
            "schema": INSIGHT_SCHEMA,
            "schema_version": INSIGHT_SCHEMA_VERSION,
            "source": self.source,
            "kind": self.kind,
            "events": self.events,
            "corrupt_lines": self.corrupt_lines,
            "cohorts": {
                key: digest.to_dict()
                for key, digest in sorted(self.cohorts.items())
            },
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "InsightSummary":
        if payload.get("schema") != INSIGHT_SCHEMA:
            raise ValueError(
                f"not an insight report (schema {payload.get('schema')!r})"
            )
        if payload.get("schema_version") != INSIGHT_SCHEMA_VERSION:
            raise ValueError(
                f"insight schema version {payload.get('schema_version')!r} "
                f"is not {INSIGHT_SCHEMA_VERSION}; regenerate the report"
            )
        return cls(
            source=str(payload.get("source", "")),
            kind=str(payload.get("kind", "events")),
            events=int(payload.get("events", 0)),
            corrupt_lines=int(payload.get("corrupt_lines", 0)),
            cohorts={
                key: CohortDigest.from_dict(value)
                for key, value in payload.get("cohorts", {}).items()
            },
        )


def _quantile_block(values: list[float]) -> dict[str, float]:
    """Exact digest of a value list (sorted in place)."""
    values.sort()
    block = {
        label_q[0]: exact_quantile(values, label_q[1])
        for label_q in zip(
            [f"p{int(q * 100)}" for q in DIGEST_QUANTILES], DIGEST_QUANTILES
        )
    }
    block["mean"] = sum(values) / len(values) if values else 0.0
    block["max"] = values[-1] if values else 0.0
    return block


def summarize_events(
    events: Iterable[dict],
    *,
    source: str = "",
    corrupt_lines: int = 0,
    exemplars: int = DEFAULT_EXEMPLARS,
) -> InsightSummary:
    """Bucket wide events into cohorts and digest each exactly."""
    latencies: dict[str, list[float]] = {}
    counter_values: dict[str, dict[str, list[float]]] = {}
    counts: dict[str, int] = {}
    slow_heaps: dict[str, list[tuple[float, int, dict]]] = {}
    total = 0
    with tracing.span("insight.summarize"):
        for sequence, event in enumerate(events):
            if event.get("event") != "query":
                continue
            total += 1
            key = cohort_of_event(event)
            counts[key] = counts.get(key, 0) + 1
            latency = float(event.get("latency_s", 0.0) or 0.0)
            latencies.setdefault(key, []).append(latency)
            per_counter = counter_values.setdefault(key, {})
            for name, value in (event.get("counters") or {}).items():
                if isinstance(value, bool) or not isinstance(
                    value, (int, float)
                ):
                    continue
                per_counter.setdefault(name, []).append(float(value))
            exemplar = (
                latency,
                -sequence,  # tie-break: earlier event wins
                {
                    "latency_s": latency,
                    "trace_id": event.get("trace_id"),
                    "request_id": event.get("request_id"),
                },
            )
            heap = slow_heaps.setdefault(key, [])
            if len(heap) < exemplars:
                heapq.heappush(heap, exemplar)
            else:
                heapq.heappushpop(heap, exemplar)
    summary = InsightSummary(
        source=source, events=total, corrupt_lines=corrupt_lines
    )
    for key in counts:
        digest = CohortDigest(count=counts[key])
        digest.latency_s = _quantile_block(latencies[key])
        for name, values in sorted(counter_values.get(key, {}).items()):
            digest.counters[name] = {
                "sum": sum(values),
                "mean": sum(values) / len(values),
                "max": max(values),
            }
        digest.slowest = [
            entry
            for _, _, entry in sorted(
                slow_heaps.get(key, []), key=lambda item: -item[0]
            )
        ]
        summary.cohorts[key] = digest
    return summary


def summarize_bench_artifact(artifact: dict, source: str = "") -> InsightSummary:
    """A ``BENCH_``/``SCALING_`` artifact as an insight summary.

    Each benchmark record becomes one cohort (keyed by its workload
    id); deterministic counters map to counter digests and the timing
    percentiles to the latency block, so the same comparator that
    diffs two event logs diffs two bench artifacts.
    """
    summary = InsightSummary(source=source, kind="bench")
    for record in artifact.get("benchmarks", []):
        key = str(record.get("id", "?"))
        repeats = int(record.get("params", {}).get("repeats", 1) or 1)
        digest = CohortDigest(count=repeats)
        timing = record.get("timing_s", {}) or {}
        digest.latency_s = {
            "p50": float(timing.get("p50", 0.0) or 0.0),
            "p90": float(timing.get("p50", 0.0) or 0.0),
            "p99": float(timing.get("max", 0.0) or 0.0),
            "mean": float(timing.get("mean", 0.0) or 0.0),
            "max": float(timing.get("max", 0.0) or 0.0),
        }
        for name, value in (record.get("counters") or {}).items():
            value = float(value)
            digest.counters[name] = {
                "sum": value * repeats,
                "mean": value,
                "max": value,
            }
        summary.cohorts[key] = digest
        summary.events += repeats
    return summary


def load_summary(path: str, *, exemplars: int = DEFAULT_EXEMPLARS) -> InsightSummary:
    """Load any supported source into an :class:`InsightSummary`.

    Dispatch is by content, not extension: a JSON object with the
    insight schema loads as a saved report, one with a ``benchmarks``
    list converts from a bench artifact, and anything line-oriented is
    read as a wide-event JSONL log (corrupt lines skipped and
    counted, see :func:`repro.obs.events.iter_events`).
    """
    if not os.path.exists(path):
        raise FileNotFoundError(f"no such file: {path}")
    payload = _try_load_json(path)
    if isinstance(payload, dict) and payload.get("schema") == INSIGHT_SCHEMA:
        summary = InsightSummary.from_dict(payload)
        summary.source = summary.source or path
        return summary
    if isinstance(payload, dict) and "benchmarks" in payload:
        return summarize_bench_artifact(payload, source=path)
    reader = iter_events(path)
    summary = summarize_events(reader, source=path, exemplars=exemplars)
    summary.corrupt_lines = reader.corrupt_lines
    return summary


def _try_load_json(path: str):
    """The whole file as one JSON document, or None (JSONL/other)."""
    try:
        with open(path, encoding="utf-8") as handle:
            return json.load(handle)
    except (json.JSONDecodeError, UnicodeDecodeError):
        return None


# ----------------------------------------------------------------------
# Comparison
# ----------------------------------------------------------------------
@dataclass
class InsightDiff:
    """Outcome of diffing two summaries; mirrors bench's report shape."""

    baseline_source: str = ""
    current_source: str = ""
    failures: list[str] = field(default_factory=list)
    warnings: list[str] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.failures

    def to_dict(self) -> dict:
        return {
            "ok": self.ok,
            "baseline_source": self.baseline_source,
            "current_source": self.current_source,
            "failures": list(self.failures),
            "warnings": list(self.warnings),
            "notes": list(self.notes),
        }


def compare_summaries(
    baseline: InsightSummary,
    current: InsightSummary,
    *,
    counter_threshold: float = DEFAULT_COUNTER_THRESHOLD,
    counter_floor: float = DEFAULT_COUNTER_FLOOR,
    latency_threshold: float = DEFAULT_LATENCY_THRESHOLD,
    latency_floor_s: float = DEFAULT_LATENCY_FLOOR_S,
    min_count: int = DEFAULT_MIN_COUNT,
    advisory_latency: bool = False,
) -> InsightDiff:
    """Diff two summaries cohort-by-cohort with per-counter attribution.

    The gate is noise-aware twice over: a cohort participates only
    when *both* sides hold at least ``min_count`` events (small
    cohorts are anecdotes, not distributions), and a number regresses
    only when it clears both a relative threshold and an absolute
    floor (:func:`repro.insight.gate.is_regression`).  Identical
    summaries therefore always diff clean, deterministically.

    ``advisory_latency`` demotes latency regressions to warnings — the
    right setting when baseline and current ran on different machines
    (CI against a committed baseline), where wall clocks are not
    comparable but counter digests are.
    """
    diff = InsightDiff(
        baseline_source=baseline.source, current_source=current.source
    )
    with tracing.span("insight.compare"):
        if baseline.kind != current.kind:
            diff.failures.append(
                f"source kind mismatch: baseline={baseline.kind!r} "
                f"current={current.kind!r} — not comparable"
            )
            return diff
        base_cohorts = baseline.cohorts
        curr_cohorts = current.cohorts
        for key in sorted(set(base_cohorts) - set(curr_cohorts)):
            if base_cohorts[key].count >= min_count:
                diff.warnings.append(
                    f"cohort {key}: present in baseline "
                    f"({base_cohorts[key].count} events) but absent now "
                    f"(coverage shrank)"
                )
        for key in sorted(set(curr_cohorts) - set(base_cohorts)):
            diff.notes.append(
                f"cohort {key}: new ({curr_cohorts[key].count} events), "
                f"no baseline to gate against"
            )
        for key in sorted(set(base_cohorts) & set(curr_cohorts)):
            base = base_cohorts[key]
            curr = curr_cohorts[key]
            if base.count < min_count or curr.count < min_count:
                continue
            _gate_counters(
                diff, key, base, curr, counter_threshold, counter_floor
            )
            _gate_latency(
                diff,
                key,
                base,
                curr,
                latency_threshold,
                latency_floor_s,
                advisory_latency,
            )
    return diff


def _gate_counters(
    diff: InsightDiff,
    key: str,
    base: CohortDigest,
    curr: CohortDigest,
    threshold: float,
    floor: float,
) -> None:
    for name in sorted(base.counters):
        if name not in curr.counters:
            diff.failures.append(
                f"cohort {key}: counter {name!r} disappeared from the "
                f"current summary"
            )
            continue
        base_mean = float(base.counters[name].get("mean", 0.0))
        curr_mean = float(curr.counters[name].get("mean", 0.0))
        if is_regression(
            base_mean, curr_mean, threshold=threshold, absolute_floor=floor
        ):
            diff.failures.append(
                f"cohort {key}: {name} mean "
                f"{format_growth(base_mean, curr_mean)} over "
                f"{base.count}->{curr.count} events"
            )
        elif curr_mean < base_mean and not math.isclose(
            curr_mean, base_mean, rel_tol=threshold
        ):
            diff.notes.append(
                f"cohort {key}: {name} mean improved "
                f"{format_growth(base_mean, curr_mean)}"
            )


def _gate_latency(
    diff: InsightDiff,
    key: str,
    base: CohortDigest,
    curr: CohortDigest,
    threshold: float,
    floor_s: float,
    advisory: bool,
) -> None:
    sink = diff.warnings if advisory else diff.failures
    for stat in _GATED_LATENCY_STATS:
        base_value = float(base.latency_s.get(stat, 0.0))
        curr_value = float(curr.latency_s.get(stat, 0.0))
        if is_regression(
            base_value, curr_value, threshold=threshold, absolute_floor=floor_s
        ):
            suffix = " (advisory)" if advisory else ""
            sink.append(
                f"cohort {key}: latency_s {stat} "
                f"{format_growth(base_value, curr_value)} over "
                f"{base.count}->{curr.count} events{suffix}"
            )


# ----------------------------------------------------------------------
# Top-k exemplars
# ----------------------------------------------------------------------
def top_events(
    events: Iterable[dict],
    *,
    k: int = 10,
    cohort: str | None = None,
) -> list[dict]:
    """The ``k`` slowest wide events, slowest first, optionally
    restricted to cohorts whose key contains ``cohort``."""
    heap: list[tuple[float, int, dict]] = []
    for sequence, event in enumerate(events):
        if event.get("event") != "query":
            continue
        key = cohort_of_event(event)
        if cohort and cohort not in key:
            continue
        entry = (
            float(event.get("latency_s", 0.0) or 0.0),
            -sequence,
            {**event, "cohort": key},
        )
        if len(heap) < k:
            heapq.heappush(heap, entry)
        else:
            heapq.heappushpop(heap, entry)
    return [event for _, _, event in sorted(heap, key=lambda item: -item[0])]
