"""Tests for DIMACS ingestion and the explanation API."""

import pytest

from repro.core import LBC, NaiveSkyline, Workspace, explain_object, explain_result
from repro.datasets import DimacsFormatError, load_dimacs

from conftest import build_random_network, place_random_objects, random_locations


def write_dimacs(tmp_path, coordinates, arcs, co_name="g.co", gr_name="g.gr"):
    co = tmp_path / co_name
    gr = tmp_path / gr_name
    co_lines = ["c coordinates", f"p aux sp co {len(coordinates)}"]
    for node_id, (x, y) in coordinates.items():
        co_lines.append(f"v {node_id} {x} {y}")
    co.write_text("\n".join(co_lines) + "\n")
    gr_lines = ["c graph", f"p sp {len(coordinates)} {len(arcs)}"]
    for u, v, w in arcs:
        gr_lines.append(f"a {u} {v} {w}")
    gr.write_text("\n".join(gr_lines) + "\n")
    return gr, co


class TestDimacsLoader:
    def test_basic_load(self, tmp_path):
        gr, co = write_dimacs(
            tmp_path,
            {1: (0, 0), 2: (1000, 0), 3: (1000, 1000)},
            [(1, 2, 120), (2, 1, 120), (2, 3, 130), (3, 2, 130)],
        )
        net = load_dimacs(gr, co)
        assert net.node_count == 3
        assert net.edge_count == 2  # symmetric arcs collapsed
        net.validate()

    def test_ids_renumbered_zero_based(self, tmp_path):
        gr, co = write_dimacs(
            tmp_path, {5: (0, 0), 9: (10, 10)}, [(5, 9, 20)]
        )
        net = load_dimacs(gr, co)
        assert sorted(net.node_ids()) == [0, 1]

    def test_coordinates_scaled_to_region(self, tmp_path):
        gr, co = write_dimacs(
            tmp_path,
            {1: (-500, -500), 2: (500, 500)},
            [(1, 2, 2000)],
        )
        net = load_dimacs(gr, co, region_side=1.0)
        box = net.mbr()
        assert box.max_x - box.min_x <= 1.0 + 1e-9
        assert box.min_x == pytest.approx(0.0)

    def test_weight_ratios_preserved(self, tmp_path):
        gr, co = write_dimacs(
            tmp_path,
            {1: (0, 0), 2: (100, 0), 3: (200, 0)},
            [(1, 2, 150), (2, 3, 300)],
        )
        net = load_dimacs(gr, co)
        lengths = sorted(e.length for e in net.edges())
        assert lengths[1] / lengths[0] == pytest.approx(2.0)

    def test_admissibility_after_scaling(self, tmp_path):
        """A weight much shorter than its chord must still load."""
        gr, co = write_dimacs(
            tmp_path,
            {1: (0, 0), 2: (1000, 0)},
            [(1, 2, 1)],  # nominal weight 1 over a 1000-unit span
        )
        net = load_dimacs(gr, co)
        net.validate()  # length >= chord enforced by RoadNetwork

    def test_asymmetric_duplicate_keeps_smaller(self, tmp_path):
        gr, co = write_dimacs(
            tmp_path, {1: (0, 0), 2: (10, 0)}, [(1, 2, 50), (2, 1, 40)]
        )
        net = load_dimacs(gr, co)
        edge = next(iter(net.edges()))
        # One global scale factor; ratios to the kept weight are 1.
        other_gr, other_co = write_dimacs(
            tmp_path, {1: (0, 0), 2: (10, 0)}, [(1, 2, 40)],
            co_name="h.co", gr_name="h.gr",
        )
        reference = next(iter(load_dimacs(other_gr, other_co).edges()))
        assert edge.length == pytest.approx(reference.length)

    def test_self_loops_skipped(self, tmp_path):
        gr, co = write_dimacs(
            tmp_path, {1: (0, 0), 2: (10, 0)}, [(1, 1, 5), (1, 2, 20)]
        )
        assert load_dimacs(gr, co).edge_count == 1

    def test_bad_arc_record(self, tmp_path):
        gr, co = write_dimacs(tmp_path, {1: (0, 0)}, [])
        gr.write_text(gr.read_text() + "a 1 7 10\n")
        with pytest.raises(DimacsFormatError):
            load_dimacs(gr, co)

    def test_non_positive_weight_rejected(self, tmp_path):
        gr, co = write_dimacs(
            tmp_path, {1: (0, 0), 2: (1, 0)}, [(1, 2, 0)]
        )
        with pytest.raises(DimacsFormatError):
            load_dimacs(gr, co)

    def test_skyline_on_loaded_network(self, tmp_path):
        """End-to-end: DIMACS grid -> objects -> agreeing algorithms."""
        coordinates = {}
        arcs = []
        side = 5
        for r in range(side):
            for c in range(side):
                coordinates[r * side + c + 1] = (c * 100, r * 100)
        for r in range(side):
            for c in range(side):
                nid = r * side + c + 1
                if c + 1 < side:
                    arcs += [(nid, nid + 1, 100), (nid + 1, nid, 100)]
                if r + 1 < side:
                    arcs += [(nid, nid + side, 100), (nid + side, nid, 100)]
        gr, co = write_dimacs(tmp_path, coordinates, arcs)
        net = load_dimacs(gr, co)
        objects = place_random_objects(net, 12, seed=1)
        ws = Workspace.build(net, objects, paged=False)
        queries = [net.location_at_node(0), net.location_at_node(24)]
        assert LBC().run(ws, queries).same_answer(
            NaiveSkyline().run(ws, queries)
        )


class TestExplain:
    @pytest.fixture(scope="class")
    def answered(self):
        network = build_random_network(50, 30, seed=801)
        objects = place_random_objects(network, 30, seed=802)
        workspace = Workspace.build(network, objects, paged=False)
        queries = random_locations(network, 3, seed=803)
        result = LBC().run(workspace, queries)
        return workspace, queries, result

    def test_member_explanation(self, answered):
        workspace, queries, result = answered
        member = result.points[0].object_id
        explanation = explain_object(workspace, queries, result, member)
        assert explanation.on_skyline
        assert explanation.witnesses == ()
        assert "on the skyline" in explanation.summary()

    def test_non_member_has_witnesses(self, answered):
        workspace, queries, result = answered
        members = set(result.object_ids())
        loser = next(
            o.object_id for o in workspace.objects if o.object_id not in members
        )
        explanation = explain_object(workspace, queries, result, loser)
        assert not explanation.on_skyline
        assert explanation.witnesses
        for witness in explanation.witnesses:
            assert all(m >= 0 for m in witness.margins)
            assert any(m > 0 for m in witness.margins)
        assert "dominated by" in explanation.summary()

    def test_witness_vectors_really_dominate(self, answered):
        from repro.skyline import dominates

        workspace, queries, result = answered
        members = set(result.object_ids())
        loser = next(
            o.object_id for o in workspace.objects if o.object_id not in members
        )
        explanation = explain_object(workspace, queries, result, loser)
        for witness in explanation.witnesses:
            assert dominates(witness.dominator_vector, explanation.vector)

    def test_every_non_member_explained(self, answered):
        workspace, queries, result = answered
        members = set(result.object_ids())
        for obj in workspace.objects:
            explanation = explain_object(
                workspace, queries, result, obj.object_id
            )
            assert explanation.on_skyline == (obj.object_id in members)

    def test_result_report(self, answered):
        workspace, queries, result = answered
        report = explain_result(workspace, queries, result)
        assert f"{len(result)} skyline points" in report
        for point in result:
            assert f"object {point.object_id}:" in report

    def test_foreign_result_rejected(self, answered):
        workspace, queries, result = answered
        other_queries = random_locations(workspace.network, 3, seed=899)
        fresh = LBC().run(workspace, other_queries)
        members = set(fresh.object_ids())
        outsider = next(
            o.object_id
            for o in workspace.objects
            if o.object_id not in members
        )
        # Explaining against mismatched queries must either resolve
        # consistently or raise the mismatch error — never mislabel.
        try:
            explanation = explain_object(
                workspace, queries, fresh, outsider
            )
        except ValueError:
            return
        assert explanation.object_id == outsider
