"""Counter gate for the columnar dominance hot path.

Wall time is hardware-noisy, so the gate that must hold everywhere is
deterministic: the block kernel answers the same skyline with a small
fraction of the interpreter-level operations (function/builtin calls
counted by ``sys.setprofile``) the scalar SFS path spends.  Timing is
reported as extra info but never asserted.
"""

from __future__ import annotations

import random
import sys
import time

from repro.columnar.store import VectorTable
from repro.skyline.sfs import sfs_skyline_block, sfs_skyline_progressive


def _profiled(fn):
    """(result, python-level events, seconds) for one call of ``fn``."""
    events = 0

    def tracer(frame, event, arg):
        nonlocal events
        if event in ("call", "c_call"):
            events += 1

    start = time.perf_counter()
    sys.setprofile(tracer)
    try:
        result = fn()
    finally:
        sys.setprofile(None)
    return result, events, time.perf_counter() - start


class TestDominanceKernelOps:
    def test_block_path_spends_far_fewer_interpreter_ops(self):
        rng = random.Random(42)
        vectors = [
            tuple(rng.randrange(16) / 16 for _ in range(5)) for _ in range(600)
        ]
        table = VectorTable.from_vectors(vectors)

        scalar, scalar_events, scalar_s = _profiled(
            lambda: list(sfs_skyline_progressive(vectors, None))
        )
        block, block_events, block_s = _profiled(
            lambda: sfs_skyline_block(table)
        )

        # Bit-identical answer, in the same confirmation order.
        assert block == scalar
        # The whole point of the columnar plane: per-candidate work is
        # flat-buffer arithmetic, not function dispatch.  The scalar
        # path pays at least one dominates() call per (candidate,
        # skyline-member) pair; the block path a handful of calls per
        # *block*.
        assert block_events < scalar_events / 5, (
            f"block path spent {block_events} interpreter events vs "
            f"scalar {scalar_events}"
        )
        print(
            f"\ncolumnar dominance: events {scalar_events} -> {block_events} "
            f"({block_events / scalar_events:.1%}), "
            f"time {scalar_s * 1e3:.1f}ms -> {block_s * 1e3:.1f}ms (advisory)"
        )
