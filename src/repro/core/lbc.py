"""LBC — the Lower Bound Constraint algorithm (Section 4.3).

LBC is the paper's headline contribution, proven instance-optimal for
network access (Theorem 1).  It improves on EDC in two ways:

* the candidate space is bounded by **network** skyline points only
  (never the looser shifted-Euclidean-skyline hypercubes), and
* candidates get **partial** network-distance computation: per
  non-source query point only a *path-distance lower bound* is pushed
  up, one A* expansion step at a time, until the candidate is either
  provably dominated (discard, distances never finished) or fully
  resolved (a new skyline point).

Structure, for a chosen source query point ``q``:

Step 1 — next network NN of ``q``:
  1.1  stream Euclidean NNs of ``q`` from the R-tree, pruning any
       object or subtree whose *Euclidean* lower-bound vector is
       dominated by a known skyline point's *network* vector;
  1.2  compute ``dN(q, p)`` for each streamed object (A*, resumable),
       holding them in a buffer until the cheapest buffered network
       distance is no larger than the next Euclidean distance — then
       that buffered object is the true next network NN.

Step 2 — resolve the network NN ``p``:
  maintain ``bounds = (dN(q,p), plb(q2,p), …, plb(qn,p), attrs…)``,
  starting each ``plb`` at the Euclidean distance; repeatedly expand
  the non-source query point with the smallest current ``plb`` by one
  node; discard ``p`` the moment a known skyline point dominates the
  bounds vector (sound: bounds never exceed the true values); if every
  search completes without that happening, ``p`` joins the skyline.

The paper formulates step 2 with per-query sorted lists ``q'.L``; the
direct lower-bound dominance test used here is equivalent (a skyline
point precedes ``p`` in every list iff it is pointwise no larger) and
touches exactly the same network data, which is what optimality is
measured in.

Tie safety beyond the paper: a newly confirmed point evicts previously
confirmed points it dominates (possible only under exact distance
ties, e.g. co-located objects reached in different emission order).

Section 4.3 also notes LBC "can easily be extended to process multiple
source query points, by selecting network nearest neighbor points from
multiple query points alternatively", as a user-preference knob on
reporting order.  :class:`LowerBoundConstraintRoundRobin` implements
that: every query point runs its own network-NN stream, streams take
turns, and each emitted candidate is resolved with the same partial
lower-bound machinery.  The answer set is identical; skyline points
near *any* query point surface early.
"""

from __future__ import annotations

from array import array
from typing import Iterator

from repro.columnar.store import SkylineBlock
from repro.core.base import SkylineAlgorithm, _ResponseTimer, insert_skyline_point
from repro.core.query import Workspace
from repro.core.result import SkylinePoint
from repro.core.stats import QueryStats
from repro.network.astar import AStarExpander
from repro.network.graph import NetworkLocation
from repro.network.objects import SpatialObject
from repro.obs import tracing
from repro.skyline.bbs import mbr_lower_bound_vector


class LowerBoundConstraint(SkylineAlgorithm):
    """The paper's instance-optimal algorithm.

    ``source_index`` selects which query point drives the network-NN
    enumeration (the paper notes the choice is a user-preference knob:
    skyline points near the source are reported first).
    """

    name = "LBC"

    def __init__(
        self,
        source_index: int = 0,
        use_lower_bounds: bool = True,
        heuristic=None,
    ) -> None:
        self.source_index = source_index
        # Optional consistent heuristic (e.g. the landmark/ALT bound of
        # repro.network.landmarks) replacing the Euclidean estimate in
        # every A* search; tighter bounds mean earlier dominance
        # verdicts.  Note: pre-computed distance information steps
        # outside Theorem 1's algorithm class (see landmarks module).
        self.heuristic = heuristic
        # Ablation knob: with use_lower_bounds=False, step 2 computes
        # every candidate's full distance vector immediately (EDC-style
        # resolution) instead of expanding lower bounds one node at a
        # time.  Isolates the contribution of the plb idea; answers are
        # identical either way.
        self.use_lower_bounds = use_lower_bounds
        if not use_lower_bounds:
            self.name = "LBC-noplb"

    def _execute(
        self,
        workspace: Workspace,
        queries: list[NetworkLocation],
        stats: QueryStats,
        timer: _ResponseTimer,
    ) -> list[SkylinePoint]:
        if not 0 <= self.source_index < len(queries):
            raise ValueError(
                f"source_index {self.source_index} outside 0..{len(queries) - 1}"
            )
        engine = workspace.engine
        self._engine = engine
        source = queries[self.source_index]
        others = [
            (i, q) for i, q in enumerate(queries) if i != self.source_index
        ]

        # Pooled A*-family expanders, one per dimension: repeated
        # queries from the same points resume earlier wavefronts.  The
        # slot keeps co-located query points on separate expanders (an
        # expander carries at most one live LowerBoundSearch).
        source_expander = engine.astar_expander(
            source, heuristic=self.heuristic, slot=self.source_index
        )
        other_expanders = {
            i: engine.astar_expander(q, heuristic=self.heuristic, slot=i)
            for i, q in others
        }

        skyline: list[SkylinePoint] = []
        # Columnar mirror of the confirmed vectors: every prune probe
        # runs the flat-buffer kernel instead of a per-tuple Python
        # loop.  Rebuilt in place after each insertion so the stream's
        # prune closure sees updates.
        sky = SkylineBlock(len(queries) + workspace.attribute_count)

        for p, source_dist in self._network_nn_stream(
            workspace, queries, source, source_expander, sky, stats
        ):
            resolved = self._resolve_candidate(
                p,
                source_dist,
                queries,
                others,
                other_expanders,
                sky,
                stats,
            )
            if resolved is None:
                continue
            point = SkylinePoint(obj=p, vector=resolved)
            insert_skyline_point(skyline, point)
            sky.rebuild(s.vector for s in skyline)
            timer.mark_first_result()

        return skyline

    # ------------------------------------------------------------------
    # Step 1: network NNs of the source, in ascending network distance
    # ------------------------------------------------------------------
    def _network_nn_stream(
        self,
        workspace: Workspace,
        queries: list[NetworkLocation],
        source: NetworkLocation,
        source_expander: AStarExpander,
        sky: SkylineBlock,
        stats: QueryStats,
    ) -> Iterator[tuple[SpatialObject, float]]:
        """Yield ``(object, dN(source, object))`` in ascending distance.

        Implements steps 1.1/1.2: Euclidean NNs stream from the R-tree
        (with dominance pruning against the *live* ``sky`` block, which
        the caller rebuilds); each gets its network distance and waits
        in a buffer until provably the closest remaining.
        """
        source_point = source.point
        all_query_points = [q.point for q in queries]
        attribute_count = workspace.attribute_count

        def prune(mbr, payload) -> bool:
            if payload is None:
                bounds = mbr_lower_bound_vector(
                    mbr, all_query_points, attribute_count
                )
            else:
                bounds = tuple(
                    payload.point.distance_to(q) for q in all_query_points
                ) + payload.attributes
            return sky.dominates_lb(bounds)

        euclid_stream = workspace.object_rtree.best_first(
            key=lambda mbr, _payload: mbr.mindist(source_point), prune=prune
        )

        buffered: dict[int, tuple[SpatialObject, float]] = {}
        stream_done = False
        next_euclid: tuple[float, SpatialObject] | None = None

        def pull() -> None:
            nonlocal stream_done, next_euclid
            try:
                dist, _, payload = next(euclid_stream)
            except StopIteration:
                stream_done = True
                next_euclid = None
            else:
                next_euclid = (dist, payload)

        pull()
        while True:
            # Absorb Euclidean NNs until the buffer provably holds the
            # next network NN (step 1.2's termination test).
            while not stream_done:
                assert next_euclid is not None
                euclid_dist, candidate = next_euclid
                if buffered and min(d for _, d in buffered.values()) <= euclid_dist:
                    break
                with tracing.span("lbc.stream"):
                    network_dist = self._engine.distance_via(
                        source, candidate.location, source_expander
                    )
                tracing.record("distance_computations")
                stats.candidate_count += 1
                buffered[candidate.object_id] = (candidate, network_dist)
                pull()
            if not buffered:
                return
            # Objects unreachable from the source surface here with an
            # inf source distance; they still get resolved (their other
            # dimensions may be finite and undominated).
            object_id = min(buffered, key=lambda i: (buffered[i][1], i))
            obj, network_dist = buffered.pop(object_id)
            yield (obj, network_dist)

    # ------------------------------------------------------------------
    # Step 2: resolve one candidate with partial distance computation
    # ------------------------------------------------------------------
    def _resolve_candidate(
        self,
        p: SpatialObject,
        source_dist: float,
        queries: list[NetworkLocation],
        others: list[tuple[int, NetworkLocation]],
        other_expanders: dict[int, AStarExpander],
        sky: SkylineBlock,
        stats: QueryStats,
        source_index: int | None = None,
    ) -> tuple[float, ...] | None:
        """Return ``p``'s full vector, or None when provably dominated."""
        if source_index is None:
            source_index = self.source_index
        n = len(queries)
        # One scratch row per candidate (distances then attributes);
        # dominance probes read it in place — the boundary tuple is
        # materialised only when the candidate survives.
        scratch = array("d", bytes(8 * (n + len(p.attributes))))
        scratch[source_index] = source_dist
        searches = {}
        for i, q in others:
            scratch[i] = q.point.distance_to(p.point)
        a = 0
        for value in p.attributes:
            scratch[n + a] = value
            a += 1

        with tracing.span("lbc.resolve", object_id=p.object_id):
            # Oracle prefill: with a usable preprocessed index every
            # remaining dimension is *exact* in one lookup, so the plb
            # machinery has nothing left to expand for it.  ``None``
            # means no usable oracle — that verdict holds for the whole
            # candidate, so stop probing after the first refusal.
            resolved: set[int] = set()
            for i, q in others:
                value = self._engine.oracle_distance(q, p.location)
                if value is None:
                    break
                scratch[i] = value
                resolved.add(i)
                self._engine.record(q, p.location, value)
                tracing.record("distance_computations")

            if not self.use_lower_bounds:
                # Ablation path: full distance computation for every
                # candidate, then one exact dominance check.
                for i, _ in others:
                    if i in resolved:
                        continue
                    scratch[i] = self._engine.distance_via(
                        queries[i], p.location, other_expanders[i]
                    )
                    tracing.record("distance_computations")
                if sky.dominates_lb(scratch):
                    return None
                return tuple(scratch)

            while True:
                if sky.dominates_lb(scratch):
                    return None
                unfinished = [
                    i
                    for i, _ in others
                    if i not in resolved
                    and (i not in searches or not searches[i].done)
                ]
                if not unfinished:
                    return tuple(scratch)
                # Expand the non-source query point with the smallest plb.
                target = min(unfinished, key=lambda i: (scratch[i], i))
                search = searches.get(target)
                if search is None:
                    search = other_expanders[target].search_toward(p.location)
                    searches[target] = search
                    tracing.record("distance_computations")
                    if search.plb > scratch[target]:
                        scratch[target] = search.plb
                    if search.done:
                        # Exact distance (settled fast path): feed the memo.
                        self._engine.record(
                            queries[target], p.location, search.distance
                        )
                    continue
                step = search.expand_step()
                if step > scratch[target]:
                    scratch[target] = step
                tracing.record("lb_expansions")
                if search.done:
                    self._engine.record(queries[target], p.location, search.distance)


class LowerBoundConstraintRoundRobin(LowerBoundConstraint):
    """LBC with alternating source query points (Section 4.3 extension).

    Every query point runs its own network-NN enumeration; the streams
    take turns emitting candidates, so skyline points close to *any*
    query point are reported early instead of only those close to one
    chosen source.  Candidates are resolved exactly as in plain LBC
    (partial lower-bound expansion against the shared skyline set), and
    an object emitted by several streams is resolved only once.

    ``candidate_count`` sums the streams' pulls, so an object pulled by
    two streams counts twice — the cost of the balanced reporting.
    """

    name = "LBC-rr"

    def __init__(self, use_lower_bounds: bool = True, heuristic=None) -> None:
        super().__init__(
            source_index=0, use_lower_bounds=use_lower_bounds, heuristic=heuristic
        )
        self.name = "LBC-rr" if use_lower_bounds else "LBC-rr-noplb"

    def _execute(
        self,
        workspace: Workspace,
        queries: list[NetworkLocation],
        stats: QueryStats,
        timer: _ResponseTimer,
    ) -> list[SkylinePoint]:
        engine = workspace.engine
        self._engine = engine
        n = len(queries)
        expanders = {
            i: engine.astar_expander(q, heuristic=self.heuristic, slot=i)
            for i, q in enumerate(queries)
        }

        skyline: list[SkylinePoint] = []
        sky = SkylineBlock(n + workspace.attribute_count)
        resolved_ids: set[int] = set()

        streams = [
            self._network_nn_stream(
                workspace, queries, queries[i], expanders[i], sky, stats
            )
            for i in range(n)
        ]
        live = [True] * n
        while any(live):
            for i in range(n):
                if not live[i]:
                    continue
                try:
                    p, source_dist = next(streams[i])
                except StopIteration:
                    live[i] = False
                    continue
                if p.object_id in resolved_ids:
                    continue
                resolved_ids.add(p.object_id)
                others = [(j, queries[j]) for j in range(n) if j != i]
                vector = self._resolve_candidate(
                    p,
                    source_dist,
                    queries,
                    others,
                    expanders,
                    sky,
                    stats,
                    source_index=i,
                )
                if vector is None:
                    continue
                insert_skyline_point(skyline, SkylinePoint(obj=p, vector=vector))
                sky.rebuild(s.vector for s in skyline)
                timer.mark_first_result()

        return skyline


class LowerBoundConstraintLazy(LowerBoundConstraint):
    """LBC with a lazily-bounded *source* dimension (our extension).

    The paper's step 1.2 computes the exact network distance from the
    source to every Euclidean NN it pulls — the cost that erodes LBC's
    advantage on sparse (large-δ) networks, where Euclidean order drags
    in many candidates before the network-NN emission test fires (see
    EXPERIMENTS.md, Figure 4(c) discussion).  This variant drops the
    network-NN ordering entirely: candidates stream in Euclidean order
    of the source distance, and *every* dimension, source included,
    starts from its Euclidean lower bound and is expanded one A* node
    at a time until the candidate is dominated or fully resolved.

    Consequences:

    * dominated candidates may now avoid even their source-distance
      computation — strictly less network access per discard;
    * reporting is no longer ordered by source network distance (the
      progressive-reporting property is traded away);
    * confirmation order can momentarily admit a point a later point
      dominates; :func:`insert_skyline_point` eviction keeps the final
      answer exact, and transitivity keeps interim pruning sound.

    Answers are identical to every other algorithm (property-tested).
    """

    name = "LBC-lazy"

    def __init__(
        self,
        source_index: int = 0,
        use_lower_bounds: bool = True,
        heuristic=None,
    ) -> None:
        super().__init__(
            source_index=source_index,
            use_lower_bounds=use_lower_bounds,
            heuristic=heuristic,
        )
        self.name = "LBC-lazy" if use_lower_bounds else "LBC-lazy-noplb"

    def _execute(
        self,
        workspace: Workspace,
        queries: list[NetworkLocation],
        stats: QueryStats,
        timer: _ResponseTimer,
    ) -> list[SkylinePoint]:
        if not 0 <= self.source_index < len(queries):
            raise ValueError(
                f"source_index {self.source_index} outside 0..{len(queries) - 1}"
            )
        engine = workspace.engine
        self._engine = engine
        source = queries[self.source_index]
        expanders = {
            i: engine.astar_expander(q, heuristic=self.heuristic, slot=i)
            for i, q in enumerate(queries)
        }
        all_dims = list(enumerate(queries))

        skyline: list[SkylinePoint] = []

        source_point = source.point
        all_query_points = [q.point for q in queries]
        attribute_count = workspace.attribute_count
        sky = SkylineBlock(len(queries) + attribute_count)

        def prune(mbr, payload) -> bool:
            if payload is None:
                bounds = mbr_lower_bound_vector(
                    mbr, all_query_points, attribute_count
                )
            else:
                bounds = tuple(
                    payload.point.distance_to(q) for q in all_query_points
                ) + payload.attributes
            return sky.dominates_lb(bounds)

        stream = workspace.object_rtree.best_first(
            key=lambda mbr, _payload: mbr.mindist(source_point), prune=prune
        )
        for _, _, p in stream:
            stats.candidate_count += 1
            vector = self._resolve_candidate(
                p,
                source_point.distance_to(p.point),  # a lower bound, not exact
                queries,
                all_dims,
                expanders,
                sky,
                stats,
                source_index=self.source_index,
            )
            if vector is None:
                continue
            insert_skyline_point(skyline, SkylinePoint(obj=p, vector=vector))
            sky.rebuild(s.vector for s in skyline)
            timer.mark_first_result()

        return skyline
