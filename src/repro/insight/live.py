"""Live insight hub: rolling per-cohort digests inside the service.

The offline analyzer answers questions about logs that already exist;
the :class:`InsightHub` answers the same questions about the queries
finishing *right now*.  :meth:`QueryService._finish
<repro.service.service.QueryService>` feeds every finished query into
:meth:`InsightHub.observe`; ``GET /insightz`` serves
:meth:`InsightHub.report`, and the service bridges headline numbers
into ``/metricsz`` gauges.

Memory is fixed by construction: one :class:`~repro.insight.sketch.
QuantileSketch` per (cohort × tracked signal), and cohort cardinality
is bounded by the |Q| bucketing (see :mod:`repro.insight.cohort`).
The hot-path cost of one ``observe`` is a few dict lookups and sketch
inserts under one lock — the overhead benchmark in
``benchmarks/test_bench_obs.py`` holds the whole plane under 5 %.

Agreement with the offline plane is a tested contract: digests here
use the same cohort keys and the same nearest-rank quantile definition
as :func:`repro.insight.analyze.summarize_events`, so live quantiles
match exact offline aggregation within the sketch's ``alpha``.
"""

from __future__ import annotations

import threading
from typing import Callable, Mapping

from repro.insight.cohort import cohort_key
from repro.insight.sketch import DEFAULT_ALPHA, QuantileSketch

LIVE_SCHEMA = "repro-insight-live"
LIVE_SCHEMA_VERSION = 1

#: Counter signals the hub digests per cohort, beyond latency.
#: ``page_misses`` is derived: the sum of every ``*_pages`` counter
#: (network/index/middle/oracle buffer pools), i.e. physical reads the
#: query charged anywhere in the storage stack.
TRACKED_COUNTERS = ("nodes_settled", "page_misses")

_PAGES_SUFFIX = "_pages"


class _CohortDigests:
    """The rolling sketches of one cohort (guarded by the hub lock)."""

    __slots__ = ("count", "latency", "counters")

    def __init__(self, alpha: float) -> None:
        self.count = 0
        self.latency = QuantileSketch(alpha)
        self.counters = {name: QuantileSketch(alpha) for name in TRACKED_COUNTERS}


class InsightHub:
    """Thread-safe rolling cohort digests for the serving hot path."""

    def __init__(
        self,
        *,
        alpha: float = DEFAULT_ALPHA,
        on_new_cohort: Callable[[str], None] | None = None,
    ) -> None:
        self.alpha = alpha
        self._lock = threading.Lock()
        self._cohorts: dict[str, _CohortDigests] = {}
        self._observed = 0
        self._on_new_cohort = on_new_cohort

    # -- hot path ------------------------------------------------------

    def observe(
        self,
        *,
        algorithm: str,
        backend: str,
        query_count: int,
        outcome: str,
        latency_s: float,
        counters: Mapping[str, float] | None = None,
    ) -> str:
        """Fold one finished query into its cohort's digests.

        Returns the cohort key (callers bridge it into metric labels).
        """
        key = cohort_key(algorithm, backend, query_count, outcome)
        counters = counters or {}
        settled = float(counters.get("nodes_settled", 0) or 0)
        pages = 0.0
        for name, value in counters.items():
            if name.endswith(_PAGES_SUFFIX) and isinstance(value, (int, float)):
                pages += float(value)
        created = False
        with self._lock:
            digests = self._cohorts.get(key)
            if digests is None:
                digests = _CohortDigests(self.alpha)
                self._cohorts[key] = digests
                created = True
            digests.count += 1
            self._observed += 1
            digests.latency.insert(max(0.0, float(latency_s)))
            digests.counters["nodes_settled"].insert(max(0.0, settled))
            digests.counters["page_misses"].insert(max(0.0, pages))
        if created and self._on_new_cohort is not None:
            # Outside the lock: metric registration takes its own locks.
            self._on_new_cohort(key)
        return key

    # -- read side -----------------------------------------------------

    @property
    def observed(self) -> int:
        with self._lock:
            return self._observed

    def cohort_keys(self) -> list[str]:
        with self._lock:
            return sorted(self._cohorts)

    def cohort_count_of(self, key: str) -> int:
        with self._lock:
            digests = self._cohorts.get(key)
            return digests.count if digests else 0

    def latency_quantile(self, key: str, q: float) -> float:
        """One cohort's latency quantile (0.0 for unknown cohorts)."""
        with self._lock:
            digests = self._cohorts.get(key)
            if digests is None:
                return 0.0
            return digests.latency.quantile(q)

    def merged_latency(self) -> QuantileSketch:
        """All cohorts' latency digests merged into one sketch.

        Merging is exact (bucket-wise), so this equals the sketch of
        every latency ever observed — the service-wide rollup.
        """
        merged = QuantileSketch(self.alpha)
        with self._lock:
            for digests in self._cohorts.values():
                merged.merge(digests.latency)
        return merged

    def report(self) -> dict:
        """The ``/insightz`` payload: one digest block per cohort.

        The per-cohort shape mirrors the offline analyzer's
        ``latency_s`` / ``counters`` blocks so the two planes read the
        same; ``alpha`` documents the quantile error bound and
        ``collapsed`` flags any cohort whose low quantiles degraded.
        """
        with self._lock:
            cohorts = {
                key: {
                    "count": digests.count,
                    "latency_s": {
                        **digests.latency.quantiles(),
                        "mean": digests.latency.mean,
                        "max": digests.latency.max if digests.count else 0.0,
                    },
                    "counters": {
                        name: {
                            **sketch.quantiles(),
                            "mean": sketch.mean,
                            "max": sketch.max if sketch.count else 0.0,
                        }
                        for name, sketch in digests.counters.items()
                    },
                    "collapsed": digests.latency.collapsed
                    or any(s.collapsed for s in digests.counters.values()),
                }
                for key, digests in sorted(self._cohorts.items())
            }
            observed = self._observed
        return {
            "schema": LIVE_SCHEMA,
            "schema_version": LIVE_SCHEMA_VERSION,
            "alpha": self.alpha,
            "observed": observed,
            "cohorts": cohorts,
        }
