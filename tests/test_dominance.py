"""Unit and property tests for the dominance relation."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.skyline import (
    dominance_count,
    dominates,
    dominates_lower_bounds,
    dominates_or_equal,
    is_dominated_by_any,
    skyline_of,
)

dims = st.shared(st.integers(min_value=1, max_value=5), key="dims")
values = st.floats(min_value=0, max_value=100, allow_nan=False)
vectors = dims.flatmap(lambda d: st.tuples(*([values] * d)))


class TestDominates:
    def test_strict_dominance(self):
        assert dominates((1, 2), (2, 3))

    def test_partial_tie_still_dominates(self):
        assert dominates((1, 2), (1, 3))

    def test_equal_vectors_do_not_dominate(self):
        assert not dominates((1, 2), (1, 2))

    def test_incomparable_vectors(self):
        assert not dominates((1, 3), (2, 2))
        assert not dominates((2, 2), (1, 3))

    def test_dimension_mismatch_raises(self):
        with pytest.raises(ValueError):
            dominates((1,), (1, 2))

    def test_with_infinities(self):
        assert dominates((1.0, 2.0), (math.inf, 2.0))
        assert not dominates((math.inf, 1.0), (math.inf, 1.0))
        assert dominates((math.inf, 1.0), (math.inf, 2.0))

    def test_dominates_or_equal(self):
        assert dominates_or_equal((1, 2), (1, 2))
        assert dominates_or_equal((1, 2), (2, 2))
        assert not dominates_or_equal((2, 2), (1, 3))


class TestLowerBoundDominance:
    def test_requires_strictness(self):
        assert not dominates_lower_bounds((1, 2), (1, 2))
        assert dominates_lower_bounds((1, 1), (1, 2))

    def test_never_false_positive(self):
        # bounds <= truth, so a verdict on bounds must hold on truth
        bounds = (3.0, 4.0)
        truth = (3.5, 6.0)
        vector = (3.0, 3.5)
        assert dominates_lower_bounds(vector, bounds)
        assert dominates(vector, truth)

    def test_conservative_when_uncertain(self):
        # vector equals the bounds: truth might equal vector (no
        # dominance), so the test must refuse.
        assert not dominates_lower_bounds((2, 2), (2, 2))

    def test_dimension_mismatch_raises(self):
        with pytest.raises(ValueError):
            dominates_lower_bounds((1,), (1, 2))

    @given(vectors, vectors, vectors)
    def test_soundness_property(self, vector, bounds, slack):
        """If the LB test fires, true dominance holds for any truth >= bounds."""
        truth = tuple(b + s for b, s in zip(bounds, slack))
        if dominates_lower_bounds(vector, bounds):
            assert dominates(vector, truth)

    @given(vectors)
    def test_coincides_with_dominates_when_exact(self, v):
        shifted = tuple(x + 1 for x in v)
        assert dominates_lower_bounds(v, shifted) == dominates(v, shifted)
        assert not dominates_lower_bounds(v, v)


class TestSkylineOf:
    def test_empty(self):
        assert skyline_of([]) == []

    def test_single(self):
        assert skyline_of([(1, 2)]) == [0]

    def test_chain(self):
        assert skyline_of([(3, 3), (2, 2), (1, 1)]) == [2]

    def test_anti_chain(self):
        assert skyline_of([(1, 3), (2, 2), (3, 1)]) == [0, 1, 2]

    def test_duplicates_all_kept(self):
        assert skyline_of([(1, 1), (1, 1), (2, 2)]) == [0, 1]

    def test_dominance_count(self):
        vectors = [(1, 1), (2, 2), (3, 3)]
        assert dominance_count(vectors, (3, 3)) == 2
        assert dominance_count(vectors, (0, 0)) == 0

    def test_is_dominated_by_any(self):
        assert is_dominated_by_any((2, 2), [(1, 1), (5, 5)])
        assert not is_dominated_by_any((1, 1), [(1, 1), (2, 0.5)])


class TestDominanceLaws:
    @given(vectors)
    def test_irreflexive(self, v):
        assert not dominates(v, v)

    @given(vectors, vectors)
    def test_asymmetric(self, a, b):
        if dominates(a, b):
            assert not dominates(b, a)

    @given(vectors, vectors, vectors)
    def test_transitive(self, a, b, c):
        if dominates(a, b) and dominates(b, c):
            assert dominates(a, c)

    @given(st.lists(vectors, max_size=30))
    def test_skyline_members_mutually_incomparable(self, vs):
        winners = skyline_of(vs)
        for i in winners:
            for j in winners:
                if i != j:
                    assert not dominates(vs[i], vs[j])

    @given(st.lists(vectors, max_size=30))
    def test_every_loser_dominated_by_a_winner(self, vs):
        winners = set(skyline_of(vs))
        for i, v in enumerate(vs):
            if i not in winners:
                assert any(dominates(vs[w], v) for w in winners)
