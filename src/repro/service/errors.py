"""Typed failures of the serving layer.

Every rejection the :class:`~repro.service.service.QueryService` can
hand a client is a distinct exception type, so callers (and the HTTP
layer) dispatch on type instead of parsing messages:

* :class:`Overloaded`       — admission control shed the request
  (bounded queue full); retry later.  Maps to HTTP 503.
* :class:`DeadlineExceeded` — the request's deadline passed before a
  worker could finish it.  Maps to HTTP 504.
* :class:`BadRequest`       — malformed request (unknown algorithm,
  empty or foreign query points).  Maps to HTTP 400.
* :class:`ServiceClosed`    — the service is shutting down.  Maps to
  HTTP 503 (without retry hints).
"""

from __future__ import annotations


class ServiceError(RuntimeError):
    """Base class for all serving-layer failures."""


class BadRequest(ServiceError):
    """The request itself is invalid; retrying it verbatim cannot help."""


class Overloaded(ServiceError):
    """Admission control rejected the request to keep the queue bounded.

    Carries the observed depth and the configured limit so clients and
    the HTTP layer can surface meaningful back-pressure (Retry-After).
    """

    def __init__(self, queue_depth: int, queue_limit: int,
                 retry_after_s: float = 0.1) -> None:
        super().__init__(
            f"request queue full ({queue_depth}/{queue_limit}); shed"
        )
        self.queue_depth = queue_depth
        self.queue_limit = queue_limit
        self.retry_after_s = retry_after_s


class DeadlineExceeded(ServiceError):
    """The per-request deadline passed before the answer was produced."""

    def __init__(self, timeout_s: float) -> None:
        super().__init__(f"deadline of {timeout_s:.3f}s exceeded")
        self.timeout_s = timeout_s


class ServiceClosed(ServiceError):
    """The service has been closed; no further requests are accepted."""
