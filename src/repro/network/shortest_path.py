"""One-shot shortest-path conveniences and interop helpers.

The query algorithms use the *resumable* expanders directly; these
wrappers are for users, examples, the naive baseline, and tests (which
cross-check against networkx).
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.network.astar import AStarExpander
from repro.network.dijkstra import DijkstraExpander
from repro.network.graph import NetworkLocation, RoadNetwork


def network_distance(
    network: RoadNetwork,
    a: NetworkLocation,
    b: NetworkLocation,
    method: str = "dijkstra",
    store=None,
) -> float:
    """Shortest network distance between two locations (inf if disconnected).

    ``method`` is ``"dijkstra"`` or ``"astar"``; both return the same
    value, A* typically visiting fewer nodes.  Pass the workspace's
    ``store`` to charge page reads to its buffer pool.
    """
    if method == "dijkstra":
        return DijkstraExpander(network, a, store=store).distance_to(b)
    if method == "astar":
        return AStarExpander(network, a, store=store).distance_to(b)
    raise ValueError(f"unknown method {method!r}")


def network_distances(
    network: RoadNetwork,
    source: NetworkLocation,
    targets: Sequence[NetworkLocation],
    store=None,
) -> list[float]:
    """Distances from one source to many targets with a single wavefront."""
    expander = DijkstraExpander(network, source, store=store)
    return [expander.distance_to(target) for target in targets]


def distance_matrix(
    network: RoadNetwork,
    sources: Sequence[NetworkLocation],
    targets: Sequence[NetworkLocation],
    store=None,
) -> list[list[float]]:
    """``matrix[i][j]`` = network distance from ``sources[i]`` to ``targets[j]``.

    One full-strength Dijkstra per source.  Workspace-bound callers
    should prefer :meth:`repro.engine.DistanceEngine.matrix`, which
    additionally memoises and reuses pooled wavefronts.
    """
    return [
        network_distances(network, src, targets, store=store)
        for src in sources
    ]


def shortest_path_nodes(
    network: RoadNetwork, a: NetworkLocation, b_node: int
) -> tuple[float, list[int]]:
    """Distance and junction sequence from a location to a junction."""
    expander = DijkstraExpander(network, a)
    dist = expander.distance_to_node(b_node)
    if dist == float("inf"):
        raise ValueError(f"node {b_node} unreachable from {a}")
    return (dist, expander.path_to_node(b_node))


def k_nearest_objects(
    network: RoadNetwork,
    source: NetworkLocation,
    placements,
    k: int,
) -> list[tuple["object", float]]:
    """The ``k`` nearest objects by network distance (INE).

    ``placements`` is a middle layer or
    :class:`~repro.network.middle_layer.InMemoryPlacements`.  Returns
    ``(object, distance)`` pairs in ascending distance; fewer than ``k``
    when the reachable network holds fewer objects.
    """
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    from repro.network.dijkstra import DijkstraExpander

    expander = DijkstraExpander(network, source, placements=placements)
    answers = []
    for obj, dist in expander.iter_objects():
        answers.append((obj, dist))
        if len(answers) == k:
            break
    return answers


def route_to(
    network: RoadNetwork, origin: NetworkLocation, destination: NetworkLocation
) -> tuple[float, list[NetworkLocation]]:
    """Distance and turn-by-turn route between two locations.

    The route is a list of locations: the origin, the junctions of a
    shortest path, and the destination.  Useful for presenting a chosen
    skyline object's actual path to the user.
    """
    expander = DijkstraExpander(network, origin)
    distance = expander.distance_to(destination)
    if distance == float("inf"):
        raise ValueError("destination unreachable from origin")

    route: list[NetworkLocation] = [origin]
    direct = network.direct_edge_distance(origin, destination)
    if direct is not None and direct <= distance + 1e-12:
        route.append(destination)
        return (direct, route)

    if destination.node_id is not None:
        entry_node = destination.node_id
    else:
        edge = network.edge(destination.edge_id)
        via_u = expander.distance_to_node(edge.u) + destination.offset
        via_v = expander.distance_to_node(edge.v) + (
            edge.length - destination.offset
        )
        entry_node = edge.u if via_u <= via_v else edge.v
    for node_id in expander.path_to_node(entry_node):
        if route[-1].node_id == node_id:
            continue  # origin already is this junction
        route.append(network.location_at_node(node_id))
    if destination.node_id is None or destination.node_id != entry_node:
        route.append(destination)
    return (distance, route)


def to_networkx(network: RoadNetwork):
    """The network as a ``networkx.Graph`` (test interop; lazy import).

    Parallel edges collapse to the shortest one, matching shortest-path
    semantics.
    """
    import networkx as nx

    graph = nx.Graph()
    for node_id in network.node_ids():
        point = network.node_point(node_id)
        graph.add_node(node_id, x=point.x, y=point.y)
    for edge in network.edges():
        existing = graph.get_edge_data(edge.u, edge.v)
        if existing is None or edge.length < existing["weight"]:
            graph.add_edge(edge.u, edge.v, weight=edge.length)
    return graph


def eccentricity_sample(
    network: RoadNetwork, node_ids: Iterable[int]
) -> dict[int, float]:
    """Largest finite distance from each sample node (network diagnostics)."""
    result: dict[int, float] = {}
    for node_id in node_ids:
        expander = DijkstraExpander(network, network.location_at_node(node_id))
        while expander.expand_next() is not None:
            pass
        finite = [d for d in expander.settled.values() if d < float("inf")]
        result[node_id] = max(finite) if finite else 0.0
    return result
