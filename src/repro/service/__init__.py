"""repro.service — the concurrent query-serving subsystem.

Turns the single-query library into a long-running server:

* :class:`QueryService` — bounded queue, worker pool, per-request
  deadlines, load-shedding admission control;
* :class:`~repro.service.batching.BatchPlanner` — groups in-flight
  requests by shared query points so co-located requests reuse
  engine wavefronts across requests, not just within one;
* :class:`~repro.concurrency.ReadWriteLock` (re-exported) — snapshot
  isolation between queries (shared side) and mutations (exclusive
  side);
* :class:`~repro.service.http.ServiceHTTPServer` — stdlib JSON
  endpoint with ``/healthz`` and ``/statsz`` (the ``repro-serve``
  entry point).

See the "Serving layer" section of ``docs/architecture.md`` for the
request lifecycle (admit → snapshot → batch → execute → respond).
"""

from repro.service.batching import (
    BatchPlan,
    BatchPlanner,
    ExecutionUnit,
    ServiceRequest,
    execute_plan,
)
from repro.service.errors import (
    BadRequest,
    DeadlineExceeded,
    Overloaded,
    ServiceClosed,
    ServiceError,
)
from repro.service.http import ServiceHTTPServer, run_serve
from repro.service.metrics import LatencyRecorder
from repro.service.service import (
    DEFAULT_BATCH_WINDOW_S,
    DEFAULT_MAX_BATCH,
    DEFAULT_QUEUE_LIMIT,
    DEFAULT_TIMEOUT_S,
    DEFAULT_WORKERS,
    SERVICE_ALGORITHMS,
    PendingQuery,
    QueryService,
)
from repro.concurrency import ReadWriteLock

__all__ = [
    "BadRequest",
    "BatchPlan",
    "BatchPlanner",
    "DEFAULT_BATCH_WINDOW_S",
    "DEFAULT_MAX_BATCH",
    "DEFAULT_QUEUE_LIMIT",
    "DEFAULT_TIMEOUT_S",
    "DEFAULT_WORKERS",
    "DeadlineExceeded",
    "ExecutionUnit",
    "LatencyRecorder",
    "Overloaded",
    "PendingQuery",
    "QueryService",
    "ReadWriteLock",
    "SERVICE_ALGORITHMS",
    "ServiceClosed",
    "ServiceError",
    "ServiceHTTPServer",
    "ServiceRequest",
    "execute_plan",
    "run_serve",
]
