"""Tests for resumable A* and its path-distance lower bounds."""

import math
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.network import AStarExpander, DijkstraExpander

from conftest import build_random_network, random_locations


class TestAStarDistances:
    def test_tiny_network(self, tiny_network):
        expander = AStarExpander(tiny_network, tiny_network.location_at_node(0))
        target = tiny_network.location_at_node(5)
        assert expander.distance_to(target) == pytest.approx(1.5)

    def test_matches_dijkstra_on_random_pairs(self):
        for seed in range(4):
            network = build_random_network(60, 40, seed=seed, detour_max=1.2)
            source = random_locations(network, 1, seed=seed + 100)[0]
            astar = AStarExpander(network, source)
            dijkstra = DijkstraExpander(network, source)
            for target in random_locations(network, 12, seed=seed + 200):
                assert astar.distance_to(target) == pytest.approx(
                    dijkstra.distance_to(target)
                )

    def test_reuse_across_targets_is_cheaper(self, medium_network):
        targets = random_locations(medium_network, 15, seed=77)
        source = medium_network.location_at_node(0)

        shared = AStarExpander(medium_network, source)
        for target in targets:
            shared.distance_to(target)
        shared_cost = shared.nodes_settled

        fresh_cost = 0
        for target in targets:
            single = AStarExpander(medium_network, source)
            single.distance_to(target)
            fresh_cost += single.nodes_settled
        assert shared_cost < fresh_cost

    def test_expands_fewer_nodes_than_dijkstra(self, medium_network):
        source = medium_network.location_at_node(0)
        target = medium_network.location_at_node(40)
        astar = AStarExpander(medium_network, source)
        astar.distance_to(target)
        dijkstra = DijkstraExpander(medium_network, source)
        dijkstra.distance_to_node(40)
        assert astar.nodes_settled <= dijkstra.nodes_settled

    def test_unreachable_target(self):
        from repro.geometry import Point
        from repro.network import RoadNetwork

        net = RoadNetwork()
        for i, xy in enumerate([(0, 0), (1, 0), (5, 5), (6, 5)]):
            net.add_node(i, Point(*xy))
        e1 = net.add_edge(0, 1)
        e2 = net.add_edge(2, 3)
        expander = AStarExpander(net, net.location_at_node(0))
        assert expander.distance_to(net.location_at_node(3)) == math.inf
        far = net.location_on_edge(e2.edge_id, e2.length / 2)
        assert expander.distance_to(far) == math.inf
        # Still answers reachable targets afterwards.
        near = net.location_on_edge(e1.edge_id, e1.length / 4)
        assert expander.distance_to(near) == pytest.approx(e1.length / 4)

    def test_same_edge_shortcut(self, tiny_network):
        edge = next(iter(tiny_network.edges()))
        a = tiny_network.location_on_edge(edge.edge_id, 0.05)
        b = tiny_network.location_on_edge(edge.edge_id, 0.45)
        expander = AStarExpander(tiny_network, a)
        assert expander.distance_to(b) == pytest.approx(0.4)

    def test_repeat_target_uses_fast_path(self, medium_network):
        source = medium_network.location_at_node(0)
        target = random_locations(medium_network, 1, seed=5)[0]
        expander = AStarExpander(medium_network, source)
        first = expander.distance_to(target)
        settled = expander.nodes_settled
        second = expander.distance_to(target)
        assert first == second
        assert expander.nodes_settled == settled  # no extra expansion


class TestLowerBoundSearch:
    def test_initial_plb_is_euclidean_distance(self, medium_network):
        source = medium_network.location_at_node(0)
        target = medium_network.location_at_node(30)
        expander = AStarExpander(medium_network, source)
        search = expander.search_toward(target)
        euclid = source.point.distance_to(target.point)
        assert search.plb >= euclid - 1e-12

    def test_plb_monotone_and_reaches_distance(self, medium_network):
        source = medium_network.location_at_node(2)
        expander = AStarExpander(medium_network, source)
        for target in random_locations(medium_network, 8, seed=9):
            search = expander.search_toward(target)
            previous = search.plb
            while not search.done:
                current = search.expand_step()
                assert current >= previous - 1e-12
                previous = current
            reference = DijkstraExpander(medium_network, source).distance_to(target)
            assert search.distance == pytest.approx(reference)
            assert search.plb == search.distance

    def test_plb_is_always_a_lower_bound(self, medium_network):
        source = medium_network.location_at_node(1)
        expander = AStarExpander(medium_network, source)
        for target in random_locations(medium_network, 6, seed=19):
            truth = DijkstraExpander(medium_network, source).distance_to(target)
            search = expander.search_toward(target)
            while not search.done:
                assert search.plb <= truth + 1e-9
                search.expand_step()
            assert search.plb == pytest.approx(truth)

    def test_stale_search_raises(self, medium_network):
        source = medium_network.location_at_node(0)
        expander = AStarExpander(medium_network, source)
        targets = random_locations(medium_network, 2, seed=29)
        old = expander.search_toward(targets[0])
        expander.search_toward(targets[1])
        if not old.done:
            with pytest.raises(RuntimeError):
                old.expand_step()

    def test_done_search_expand_step_is_noop(self, medium_network):
        source = medium_network.location_at_node(0)
        expander = AStarExpander(medium_network, source)
        target = medium_network.location_at_node(1)
        search = expander.search_toward(target)
        distance = search.run_to_completion()
        assert search.expand_step() == distance

    def test_partial_expansion_settles_fewer_nodes(self, medium_network):
        """The point of LBC: stopping early saves network access."""
        source = medium_network.location_at_node(0)
        far_target = max(
            (medium_network.location_at_node(v) for v in medium_network.node_ids()),
            key=lambda loc: source.point.distance_to(loc.point),
        )
        partial = AStarExpander(medium_network, source)
        search = partial.search_toward(far_target)
        for _ in range(3):
            if not search.done:
                search.expand_step()
        full = AStarExpander(medium_network, source)
        full.distance_to(far_target)
        assert partial.nodes_settled < full.nodes_settled


class TestAStarProperties:
    @settings(max_examples=12, deadline=None)
    @given(st.integers(min_value=0, max_value=10_000))
    def test_astar_equals_dijkstra_random(self, seed):
        network = build_random_network(35, 25, seed=seed, detour_max=1.0)
        source = random_locations(network, 1, seed=seed + 1)[0]
        targets = random_locations(network, 6, seed=seed + 2)
        astar = AStarExpander(network, source)
        dijkstra = DijkstraExpander(network, source)
        for target in targets:
            assert astar.distance_to(target) == pytest.approx(
                dijkstra.distance_to(target)
            )

    @settings(max_examples=10, deadline=None)
    @given(st.integers(min_value=0, max_value=10_000))
    def test_interleaved_expander_reuse_stays_exact(self, seed):
        """Sequential searches over one expander never corrupt settled state."""
        network = build_random_network(30, 20, seed=seed, detour_max=0.8)
        source = random_locations(network, 1, seed=seed + 3)[0]
        expander = AStarExpander(network, source)
        rng = random.Random(seed)
        targets = random_locations(network, 10, seed=seed + 4)
        rng.shuffle(targets)
        for target in targets:
            got = expander.distance_to(target)
            want = DijkstraExpander(network, source).distance_to(target)
            assert got == pytest.approx(want)
            # Settled distances must stay exact after every search.
            reference = DijkstraExpander(network, source)
            while reference.expand_next() is not None:
                pass
            for node, dist in expander.settled.items():
                assert dist == pytest.approx(reference.settled[node])
