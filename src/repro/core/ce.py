"""CE — the Collaborative Expansion algorithm (Section 4.1).

Each query point grows a Dijkstra wavefront; the wavefronts take turns
emitting their next nearest object by network distance.

*Filtering phase.*  Every object any wavefront meets goes into the
candidate set ``C``.  The phase ends when one object ``p*`` has been
visited by **all** dimensions: ``p*`` is the first skyline point, and
every object never seen so far is dominated by it (each dimension's
unseen objects lie at least as far as ``p*`` in that dimension).

*Refinement phase.*  Expansion continues, but objects outside ``C`` are
discarded.  When a candidate has been visited by every query point its
vector is complete: it is a skyline point unless dominated by one that
is already confirmed.  Confirmed points prune the remaining candidates
through the paper's ``∩ C(p,q)`` rule, realised here as a sound
lower-bound dominance test (a candidate's unknown distance to ``q`` is
at least the distance of ``q``'s last emitted object).

*Static attributes.*  The paper's closing remark of Section 4.3 — treat
non-spatial attributes (e.g. hotel price) as dimensions whose
"distances" are pre-computed — matters for CE's correctness, not just
generality: an object may be remote from every query point yet survive
on a cheap attribute, and the distance-only cut-off would never place
it in ``C``.  Each attribute therefore participates in the round-robin
as a *virtual expander* that emits objects in ascending attribute
order, so the filtering-phase cut remains exact in the full vector
space.

Tie safety beyond the paper: (1) after the filtering phase the
completing dimension is drained of objects tied with ``p*`` so vectors
identical to ``p*``'s are not lost, and (2) confirmed points evict
previously confirmed points they dominate (only possible under exact
ties).  Both are no-ops on generic inputs.
"""

from __future__ import annotations

import math

from array import array

from repro.columnar.kernels import dominates_flat
from repro.columnar.store import SkylineBlock, VectorTable
from repro.core.base import SkylineAlgorithm, _ResponseTimer, insert_skyline_point
from repro.core.query import Workspace
from repro.core.result import SkylinePoint
from repro.core.stats import QueryStats
from repro.network.graph import NetworkLocation
from repro.network.objects import SpatialObject
from repro.obs import tracing


class _AttributeRank:
    """A virtual wavefront: emits objects in ascending attribute order.

    Mirrors the emission interface of
    :class:`~repro.network.dijkstra.DijkstraExpander` for one static
    attribute dimension, whose "network distances" are all pre-known.
    """

    def __init__(self, objects: list[SpatialObject], attribute_index: int) -> None:
        self._ordered = sorted(
            objects,
            key=lambda o: (o.attributes[attribute_index], o.object_id),
        )
        self._attribute_index = attribute_index
        self._position = 0
        self.last_emitted_distance = -math.inf
        self.nodes_settled = 0

    @property
    def exhausted(self) -> bool:
        return self._position >= len(self._ordered)

    def next_nearest_object(self) -> tuple[SpatialObject, float] | None:
        if self.exhausted:
            return None
        obj = self._ordered[self._position]
        self._position += 1
        value = obj.attributes[self._attribute_index]
        self.last_emitted_distance = value
        return (obj, value)


class CollaborativeExpansion(SkylineAlgorithm):
    """The paper's straightforward multi-wavefront algorithm.

    ``strategy`` picks how the wavefronts alternate:

    * ``"round_robin"`` (default) — one emission per dimension per
      cycle, the literal reading of "expanded in a collaborative way";
    * ``"min_radius"`` — always advance the wavefront whose last
      emission is nearest its query point, keeping all search circles
      the same size.  Balanced circles reach the first
      visited-by-all object with less total area when query points have
      unequal object densities around them.

    Both produce identical answers; the benchmark suite compares costs.
    """

    name = "CE"

    STRATEGIES = ("round_robin", "min_radius")

    def __init__(self, strategy: str = "round_robin") -> None:
        if strategy not in self.STRATEGIES:
            raise ValueError(
                f"unknown strategy {strategy!r}; choose from {self.STRATEGIES}"
            )
        self.strategy = strategy
        if strategy != "round_robin":
            self.name = f"CE-{strategy.replace('_', '-')}"

    def _next_dimension(
        self, expanders, exhausted: list[bool], dimensions: range
    ) -> int | None:
        """The dimension whose wavefront should emit next (or None)."""
        live = [i for i in dimensions if not exhausted[i]]
        if not live:
            return None
        if self.strategy == "round_robin":
            return live[0]
        return min(
            live, key=lambda i: (expanders[i].last_emitted_distance, i)
        )

    def _execute(
        self,
        workspace: Workspace,
        queries: list[NetworkLocation],
        stats: QueryStats,
        timer: _ResponseTimer,
    ) -> list[SkylinePoint]:
        engine = workspace.engine
        n = len(queries)
        k = workspace.attribute_count
        m = n + k  # total dimensions

        all_objects = list(workspace.objects)
        # INE wavefronts are per-query (emission state cannot be pooled);
        # the engine builds them with the store and middle layer wired.
        expanders: list = [engine.ine_expander(q) for q in queries]
        expanders.extend(_AttributeRank(all_objects, j) for j in range(k))

        # Partial vectors live in one flat column block: candidate rows
        # are inf-initialised (unknown distance) with attribute slots
        # pre-filled (pre-known), and per-object bitmasks track which
        # dimensions have emitted.  ``handles`` maps object id -> row.
        table = VectorTable(m)
        handles: dict[int, int] = {}
        masks: dict[int, int] = {}
        objects: dict[int, SpatialObject] = {}
        exhausted = [False] * m
        full_mask = (1 << m) - 1
        spatial_mask = (1 << n) - 1
        inf_row = (math.inf,) * m

        def handle_of(obj: SpatialObject) -> int:
            h = handles.get(obj.object_id)
            if h is None:
                h = table.append(inf_row)
                handles[obj.object_id] = h
                masks[obj.object_id] = 0
                objects[obj.object_id] = obj
                base = h * m + n
                for a, value in enumerate(obj.attributes):
                    table.data[base + a] = value
            return h

        def record_visit(index: int, obj: SpatialObject, value: float) -> bool:
            """Record one emission; True when visited in every dimension."""
            h = handle_of(obj)
            table.data[h * m + index] = value
            mask = masks[obj.object_id] | (1 << index)
            masks[obj.object_id] = mask
            if index < n:
                tracing.record("distance_computations")
                # INE emissions are exact distances: feed the shared
                # memo so later queries and explain() answer from cache.
                engine.record(queries[index], obj.location, value)
            return mask == full_mask

        # ------------------------------------------------------------------
        # Filtering phase
        # ------------------------------------------------------------------
        first_complete: int | None = None
        completing_index = 0
        with tracing.span("ce.filter"):
            while first_complete is None and not all(exhausted):
                if self.strategy == "round_robin":
                    order = [i for i in range(m) if not exhausted[i]]
                else:
                    chosen = self._next_dimension(expanders, exhausted, range(m))
                    order = [] if chosen is None else [chosen]
                if not order:
                    break
                for i in order:
                    expander = expanders[i]
                    emission = expander.next_nearest_object()
                    if emission is None:
                        exhausted[i] = True
                        continue
                    obj, value = emission
                    if record_visit(i, obj, value):
                        first_complete = obj.object_id
                        completing_index = i
                        break

        candidates: set[int] = set(handles)
        skyline: list[SkylinePoint] = []
        # Columnar mirror of the confirmed vectors for the refine-phase
        # dominance probes; rebuilt after every insertion (evictions).
        sky = SkylineBlock(m)

        if first_complete is not None:
            # Drain exact ties from the completing dimension so objects
            # whose vector equals p*'s are not lost to the C cut-off.
            p_star_value = table.data[handles[first_complete] * m + completing_index]
            expander = expanders[completing_index]
            while not exhausted[completing_index]:
                emission = expander.next_nearest_object()
                if emission is None:
                    exhausted[completing_index] = True
                    break
                obj, value = emission
                record_visit(completing_index, obj, value)
                candidates.add(obj.object_id)
                if value > p_star_value:
                    break

            stats.candidate_count = len(candidates)
            p_star = objects[first_complete]
            vector = table.row(handles[first_complete])
            new_point = SkylinePoint(obj=p_star, vector=vector)
            insert_skyline_point(skyline, new_point)
            sky.rebuild(s.vector for s in skyline)
            timer.mark_first_result()
            candidates.discard(first_complete)
            self._prune(candidates, table, handles, masks, expanders, new_point, n)
        else:
            # Every dimension exhausted before any object was visited in
            # all of them: parts of the network are unreachable.  All
            # seen objects stay candidates with inf-padded vectors, and
            # never-seen objects (unreachable from every query point)
            # join them — their all-inf distance vectors tie, so only
            # their attributes can decide dominance.  Without a p* there
            # is no cut-off argument to exclude them.
            for obj in workspace.objects:
                if obj.object_id not in handles:
                    handle_of(obj)
                    candidates.add(obj.object_id)
            stats.candidate_count = len(candidates)

        # ------------------------------------------------------------------
        # Refinement phase (spatial dimensions only: attribute values of
        # candidates are already exact)
        # ------------------------------------------------------------------
        with tracing.span("ce.refine"):
            while candidates and not all(exhausted[:n]):
                progressed = False
                for i in range(n):
                    if exhausted[i] or not candidates:
                        continue
                    if not self._wants_expansion(i, candidates, masks):
                        continue
                    emission = expanders[i].next_nearest_object()
                    if emission is None:
                        exhausted[i] = True
                        continue
                    progressed = True
                    obj, value = emission
                    engine.record(queries[i], obj.location, value)
                    if obj.object_id not in candidates:
                        # New objects met during refinement are dominated
                        # (they lie beyond p* in every dimension) — discard.
                        continue
                    h = handles[obj.object_id]
                    table.data[h * m + i] = value
                    mask = masks[obj.object_id] | (1 << i)
                    masks[obj.object_id] = mask
                    tracing.record("distance_computations")
                    if mask & spatial_mask == spatial_mask:
                        candidates.discard(obj.object_id)
                        vector = table.row(h)
                        if not sky.dominates(vector):
                            new_point = SkylinePoint(obj=obj, vector=vector)
                            insert_skyline_point(skyline, new_point)
                            sky.rebuild(s.vector for s in skyline)
                            timer.mark_first_result()
                            self._prune(
                                candidates, table, handles, masks,
                                expanders, new_point, n,
                            )
                if not progressed:
                    break

        # Finalise candidates that remained partially visited because a
        # wavefront exhausted (unreachable regions): unknown = inf.
        for object_id in sorted(candidates):
            obj = objects[object_id]
            vector = table.row(handles[object_id])
            if not sky.dominates(vector):
                insert_skyline_point(skyline, SkylinePoint(obj=obj, vector=vector))
                sky.rebuild(s.vector for s in skyline)
                timer.mark_first_result()

        return skyline

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------
    @staticmethod
    def _wants_expansion(
        index: int, candidates: set[int], masks: dict[int, int]
    ) -> bool:
        """Skip wavefronts that already know every candidate's distance."""
        return any(not masks[c] >> index & 1 for c in candidates)

    @staticmethod
    def _prune(
        candidates: set[int],
        table: VectorTable,
        handles: dict[int, int],
        masks: dict[int, int],
        expanders: list,
        new_point: SkylinePoint,
        n: int,
    ) -> None:
        """Drop candidates provably dominated by the new skyline point.

        Pruning runs once per confirmation, against the newly confirmed
        point only (the paper's ``∩ C(p,q)`` rule) — earlier skyline
        points already pruned everything they could when they arrived.
        A candidate's unknown distance to query ``i`` is bounded below
        by the distance of that wavefront's last emission; attribute
        dimensions are exact.  Strictness in the lower-bound dominance
        test guarantees no tied twin is ever discarded.

        One scratch row is reused for every candidate's bounds vector —
        known values come straight out of the column block, unknown
        spatial slots are floored by the wavefront radii.
        """
        m = table.width
        data = table.data
        vector = new_point.vector
        scratch = array("d", bytes(8 * m))
        doomed: list[int] = []
        for object_id in candidates:
            base = handles[object_id] * m
            mask = masks[object_id]
            i = 0
            while i < n:
                if mask >> i & 1:
                    scratch[i] = data[base + i]
                else:
                    floor = expanders[i].last_emitted_distance
                    scratch[i] = floor if floor > 0.0 else 0.0
                i += 1
            while i < m:
                # Attribute slots are exact from row creation.
                scratch[i] = data[base + i]
                i += 1
            if dominates_flat(vector, 0, scratch, 0, m):
                doomed.append(object_id)
        for object_id in doomed:
            candidates.discard(object_id)
