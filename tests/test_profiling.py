"""repro.profiling: span attribution, collapsed output, determinism."""

import threading
import time

import pytest

from repro.obs import tracing
from repro.profiling import (
    ProfileReport,
    SamplingProfiler,
    format_self_time_table,
)
from repro.profiling.sampler import UNATTRIBUTED, _frame_label


def spin(seconds: float) -> None:
    """Busy-wait so the sampler has frames to catch."""
    deadline = time.perf_counter() + seconds
    while time.perf_counter() < deadline:
        sum(range(200))


# ---------------------------------------------------------------------------
# Span attribution
# ---------------------------------------------------------------------------


def test_samples_attribute_to_active_span():
    profiler = SamplingProfiler(interval_s=0.001)
    with profiler:
        with tracing.span("query.LBC"):
            spin(0.15)
    report = profiler.report
    assert report.total_samples > 0
    assert report.self_samples.get("query.LBC", 0) > 0
    assert report.dominant_root() == "query.LBC"


def test_nested_spans_attribute_to_leaf_and_root():
    profiler = SamplingProfiler(interval_s=0.001)
    with profiler:
        with tracing.span("query.LBC"):
            with tracing.span("lbc.resolve"):
                spin(0.15)
    report = profiler.report
    # Self time lands on the innermost span, roots roll up to the query.
    assert report.self_samples.get("lbc.resolve", 0) > 0
    assert report.root_samples.get("query.LBC", 0) > 0
    assert "lbc.resolve" not in report.root_samples


def test_samples_outside_spans_are_unattributed():
    profiler = SamplingProfiler(interval_s=0.001)
    with profiler:
        spin(0.1)
    report = profiler.report
    assert report.total_samples > 0
    assert report.attributed_samples == 0
    assert report.unattributed_samples == report.total_samples


def test_worker_thread_samples_attributed():
    # Cross-thread attribution: the sampled span lives on a worker
    # thread, not the profiler's starter.
    def work():
        with tracing.span("query.CE"):
            spin(0.15)

    profiler = SamplingProfiler(interval_s=0.001)
    with profiler:
        thread = threading.Thread(target=work)
        thread.start()
        thread.join()
    assert profiler.report.self_samples.get("query.CE", 0) > 0


# ---------------------------------------------------------------------------
# Collapsed stacks
# ---------------------------------------------------------------------------


def test_collapsed_lines_lead_with_span_path(tmp_path):
    profiler = SamplingProfiler(interval_s=0.001)
    with profiler:
        with tracing.span("query.EDC"):
            with tracing.span("edc.refine"):
                spin(0.15)
    lines = profiler.report.collapsed_lines()
    assert lines, "expected at least one collapsed stack"
    frames = lines[0].rsplit(" ", 1)[0].split(";")
    assert frames[0] == "query.EDC"
    assert frames[1] == "edc.refine"
    # Python frames follow the span prefix; this test file is on-stack.
    assert any(label.startswith("test_profiling.") for label in frames)
    count = lines[0].rsplit(" ", 1)[1]
    assert count.isdigit() and int(count) > 0

    out = tmp_path / "profile.collapsed"
    written = profiler.report.write_collapsed(str(out))
    assert written == len(lines)
    assert out.read_text().splitlines() == lines


def test_frame_label_strips_path_and_extension():
    frame = next(iter(__import__("sys")._current_frames().values()))
    label = _frame_label(frame)
    assert "/" not in label and ".py" not in label


# ---------------------------------------------------------------------------
# Determinism and lifecycle
# ---------------------------------------------------------------------------


def test_dominant_root_stable_across_runs():
    """The headline attribution must not flap run to run."""

    def one_run() -> str:
        profiler = SamplingProfiler(interval_s=0.001)
        with profiler:
            with tracing.span("query.LBC"):
                spin(0.08)
            with tracing.span("query.CE"):
                spin(0.02)
        return profiler.report.dominant_root()

    assert one_run() == one_run() == "query.LBC"


def test_profiler_single_use():
    profiler = SamplingProfiler(interval_s=0.01)
    with profiler:
        pass
    with pytest.raises(RuntimeError, match="already started"):
        profiler.start()
    fresh = SamplingProfiler(interval_s=0.01)
    with pytest.raises(RuntimeError, match="never started"):
        fresh.stop()


def test_invalid_interval_rejected():
    with pytest.raises(ValueError, match="interval"):
        SamplingProfiler(interval_s=0.0)


def test_report_table_and_dict():
    report = ProfileReport(interval_s=0.002)
    report.total_samples = 10
    report.attributed_samples = 8
    report.self_samples = {"query.LBC": 6, "lbc.resolve": 2}
    report.root_samples = {"query.LBC": 8}
    report.duration_s = 0.02
    table = format_self_time_table(report)
    assert "query.LBC" in table
    assert UNATTRIBUTED in table  # 2 unattributed samples shown
    data = report.to_dict()
    assert data["total_samples"] == 10
    assert list(data["self_samples"]) == ["query.LBC", "lbc.resolve"]
