"""Deletion tests for the B+-tree and R-tree."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry import Point
from repro.index import BPlusTree, RTree


class TestBPlusTreeDeletion:
    def test_delete_single_value(self):
        tree = BPlusTree(order=4)
        tree.insert(1, "a")
        tree.insert(1, "b")
        assert tree.delete(1, "a") == 1
        assert tree.search(1) == ["b"]
        assert len(tree) == 1

    def test_delete_whole_bucket(self):
        tree = BPlusTree(order=4)
        for value in "abc":
            tree.insert(7, value)
        assert tree.delete(7) == 3
        assert tree.search(7) == []
        assert tree.key_count == 0
        assert len(tree) == 0

    def test_delete_missing_key(self):
        tree = BPlusTree(order=4)
        tree.insert(1, "a")
        assert tree.delete(2) == 0
        assert tree.delete(1, "zzz") == 0
        assert len(tree) == 1

    def test_delete_then_reinsert(self):
        tree = BPlusTree(order=4)
        tree.insert(5, "x")
        tree.delete(5)
        tree.insert(5, "y")
        assert tree.search(5) == ["y"]
        tree.validate()

    def test_delete_across_deep_tree(self):
        tree = BPlusTree(order=3)
        for i in range(100):
            tree.insert(i, i)
        for i in range(0, 100, 2):
            assert tree.delete(i) == 1
        assert list(tree.keys()) == list(range(1, 100, 2))
        for i in range(1, 100, 2):
            assert tree.search(i) == [i]

    def test_range_search_after_deletes(self):
        tree = BPlusTree(order=4)
        for i in range(50):
            tree.insert(i, i)
        for i in range(10, 20):
            tree.delete(i)
        got = [k for k, _ in tree.range_search(5, 25)]
        assert got == [5, 6, 7, 8, 9, 20, 21, 22, 23, 24, 25]

    @settings(max_examples=40, deadline=None)
    @given(
        st.lists(
            st.tuples(
                st.sampled_from(["insert", "delete"]),
                st.integers(min_value=0, max_value=30),
                st.integers(min_value=0, max_value=5),
            ),
            max_size=200,
        )
    )
    def test_matches_dict_model_under_mixed_ops(self, ops):
        tree = BPlusTree(order=4)
        model: dict[int, list[int]] = {}
        for op, key, value in ops:
            if op == "insert":
                tree.insert(key, value)
                model.setdefault(key, []).append(value)
            else:
                removed = tree.delete(key, value)
                bucket = model.get(key, [])
                expected = 1 if value in bucket else 0
                assert removed == expected
                if value in bucket:
                    bucket.remove(value)
                    if not bucket:
                        del model[key]
        for key in range(31):
            assert sorted(tree.search(key)) == sorted(model.get(key, []))
        assert len(tree) == sum(len(v) for v in model.values())


class TestRTreeDeletion:
    def _populated(self, count=120, seed=0, max_entries=5):
        rng = random.Random(seed)
        points = [Point(rng.random(), rng.random()) for _ in range(count)]
        tree = RTree(max_entries=max_entries)
        for i, p in enumerate(points):
            tree.insert_point(p, i)
        return tree, points

    def test_delete_existing(self):
        tree, points = self._populated()
        assert tree.delete_point(points[10], 10)
        assert len(tree) == 119
        assert 10 not in [p for _, p in tree.all_entries()]
        tree.validate()

    def test_delete_missing_returns_false(self):
        tree, points = self._populated()
        assert not tree.delete_point(Point(55.0, 55.0), 999)
        assert len(tree) == 120

    def test_delete_wrong_payload_returns_false(self):
        tree, points = self._populated()
        assert not tree.delete_point(points[3], 999)
        assert len(tree) == 120

    def test_delete_everything(self):
        tree, points = self._populated(count=60)
        order = list(range(60))
        random.Random(1).shuffle(order)
        for i in order:
            assert tree.delete_point(points[i], i)
        assert len(tree) == 0
        assert list(tree.all_entries()) == []

    def test_structure_valid_after_heavy_deletion(self):
        tree, points = self._populated(count=200, seed=2)
        rng = random.Random(3)
        victims = rng.sample(range(200), 150)
        for i in victims:
            assert tree.delete_point(points[i], i)
        tree.validate()
        survivors = sorted(p for _, p in tree.all_entries())
        assert survivors == sorted(set(range(200)) - set(victims))

    def test_nearest_still_exact_after_deletion(self):
        tree, points = self._populated(count=150, seed=4)
        rng = random.Random(5)
        removed = set(rng.sample(range(150), 70))
        for i in removed:
            tree.delete_point(points[i], i)
        q = Point(0.5, 0.5)
        got = [i for _, _, i in tree.nearest(q)]
        expected = sorted(
            (i for i in range(150) if i not in removed),
            key=lambda i: (points[i].distance_to(q), i),
        )
        assert sorted(got) == sorted(expected)
        got_dists = [points[i].distance_to(q) for i in got]
        assert got_dists == sorted(got_dists)

    def test_delete_then_reinsert(self):
        tree, points = self._populated(count=40, seed=6)
        for i in range(20):
            tree.delete_point(points[i], i)
        for i in range(20):
            tree.insert_point(points[i], i)
        tree.validate()
        assert len(tree) == 40

    def test_root_shrinks(self):
        tree, points = self._populated(count=100, seed=7, max_entries=4)
        for i in range(95):
            tree.delete_point(points[i], i)
        tree.validate()
        assert len(tree) == 5

    @settings(max_examples=20, deadline=None)
    @given(st.integers(min_value=0, max_value=10_000))
    def test_random_interleaved_ops(self, seed):
        rng = random.Random(seed)
        tree = RTree(max_entries=4)
        alive: dict[int, Point] = {}
        next_id = 0
        for _ in range(rng.randrange(10, 80)):
            if alive and rng.random() < 0.4:
                victim = rng.choice(sorted(alive))
                assert tree.delete_point(alive.pop(victim), victim)
            else:
                p = Point(rng.random(), rng.random())
                tree.insert_point(p, next_id)
                alive[next_id] = p
                next_id += 1
        tree.validate()
        assert sorted(p for _, p in tree.all_entries()) == sorted(alive)
