"""A small, mergeable, fixed-memory quantile sketch.

The live insight plane (:mod:`repro.insight.live`) keeps one rolling
latency/settled/page digest per cohort inside the serving hot path, so
the estimator must satisfy three constraints at once:

* **fixed memory** — a cohort that sees ten million queries must not
  hold ten million floats;
* **mergeable** — per-worker or per-shard digests have to combine into
  one without losing the error guarantee (the P² estimator that
  usually fills this niche keeps five markers but two P² sketches
  cannot be merged, so we keep the fixed-memory spirit of P² and trade
  its marker parabola for logarithmic buckets);
* **a documented error bound** — the acceptance test for the whole
  plane checks live sketch quantiles against exact offline aggregation
  over the same events, so the bound is part of the contract.

The design is the standard log-bucketed ("DDSketch-style") scheme:
a value ``v > 0`` lands in bucket ``ceil(log_gamma(v))`` where
``gamma = (1 + alpha) / (1 - alpha)``; the bucket is answered back as
the log-midpoint ``2 * gamma**i / (gamma + 1)``.  Every value in
bucket ``i`` is within relative ``alpha`` of that midpoint, giving the
guarantee:

    For any quantile ``q``, :meth:`QuantileSketch.quantile` returns
    ``x̂`` with ``|x̂ - x| <= alpha * x``, where ``x`` is the exact
    nearest-rank ``q``-quantile of everything inserted — as long as no
    bucket collapse has occurred (``collapsed`` stays ``False``).

Merging adds bucket counts index-by-index, so a merged sketch is
*bit-identical* to the sketch of the concatenated stream — merging
introduces no additional error, which is what makes per-thread or
per-shard digests safe to combine.

Collapse only happens when the dynamic range of inserted values
exceeds ``gamma ** max_buckets`` (about ``e**40`` ≈ 2.4e17 at the
defaults), in which case the *smallest* buckets fold together and only
low quantiles degrade; tail quantiles keep the bound.  Values in
``[0, zero_threshold]`` are counted exactly in a dedicated zero
bucket, so integer counters that are frequently zero stay exact.

Everything here is stdlib-only (``obs``-grade layering) and
JSON-serialisable via :meth:`to_dict` / :meth:`from_dict`.
"""

from __future__ import annotations

import math
from typing import Iterable, Mapping

DEFAULT_ALPHA = 0.01
DEFAULT_MAX_BUCKETS = 2048
DEFAULT_ZERO_THRESHOLD = 1e-12

#: The quantiles a digest reports by default, everywhere (live hub,
#: offline analyzer, reporters) — one vocabulary so digests line up.
DIGEST_QUANTILES = (0.5, 0.9, 0.99)


def exact_quantile(values: list[float], q: float) -> float:
    """Nearest-rank quantile over a sorted list — the offline reference.

    Uses ``rank = ceil(q * n)`` (clamped to ``[1, n]``), the same rank
    definition :meth:`QuantileSketch.quantile` resolves, so sketch and
    exact aggregation are comparable value-for-value.
    """
    if not values:
        return 0.0
    if not 0.0 <= q <= 1.0:
        raise ValueError(f"quantile must be in [0, 1], got {q}")
    rank = min(len(values), max(1, math.ceil(q * len(values))))
    return values[rank - 1]


class QuantileSketch:
    """Mergeable log-bucketed quantile sketch with relative error
    ``alpha`` (see the module docstring for the exact guarantee)."""

    __slots__ = (
        "alpha",
        "_gamma",
        "_log_gamma",
        "zero_threshold",
        "max_buckets",
        "_buckets",
        "_zero_count",
        "count",
        "sum",
        "min",
        "max",
        "collapsed",
    )

    def __init__(
        self,
        alpha: float = DEFAULT_ALPHA,
        *,
        max_buckets: int = DEFAULT_MAX_BUCKETS,
        zero_threshold: float = DEFAULT_ZERO_THRESHOLD,
    ) -> None:
        if not 0.0 < alpha < 1.0:
            raise ValueError(f"alpha must be in (0, 1), got {alpha}")
        if max_buckets < 2:
            raise ValueError(f"max_buckets must be >= 2, got {max_buckets}")
        if zero_threshold < 0.0:
            raise ValueError(
                f"zero_threshold must be >= 0, got {zero_threshold}"
            )
        self.alpha = alpha
        self._gamma = (1.0 + alpha) / (1.0 - alpha)
        self._log_gamma = math.log(self._gamma)
        self.zero_threshold = zero_threshold
        self.max_buckets = max_buckets
        self._buckets: dict[int, int] = {}
        self._zero_count = 0
        self.count = 0
        self.sum = 0.0
        self.min = math.inf
        self.max = -math.inf
        self.collapsed = False

    # -- inserts -------------------------------------------------------

    def insert(self, value: float, weight: int = 1) -> None:
        """Add one observation (or ``weight`` identical ones)."""
        value = float(value)
        if value < 0.0 or math.isnan(value) or math.isinf(value):
            raise ValueError(
                f"sketch values must be finite and >= 0, got {value}"
            )
        if weight < 1:
            raise ValueError(f"weight must be >= 1, got {weight}")
        self.count += weight
        self.sum += value * weight
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        if value <= self.zero_threshold:
            self._zero_count += weight
            return
        index = math.ceil(math.log(value) / self._log_gamma)
        self._buckets[index] = self._buckets.get(index, 0) + weight
        if len(self._buckets) > self.max_buckets:
            self._collapse()

    def extend(self, values: Iterable[float]) -> None:
        for value in values:
            self.insert(value)

    def _collapse(self) -> None:
        """Fold the lowest buckets together until back under budget.

        Collapsing from the bottom keeps the tail (the quantiles
        operators actually alert on) exact; :attr:`collapsed` records
        that low quantiles are now best-effort.
        """
        while len(self._buckets) > self.max_buckets:
            low, second = sorted(self._buckets)[:2]
            self._buckets[second] += self._buckets.pop(low)
        self.collapsed = True

    # -- queries -------------------------------------------------------

    def _bucket_value(self, index: int) -> float:
        return 2.0 * self._gamma**index / (self._gamma + 1.0)

    def quantile(self, q: float) -> float:
        """The nearest-rank ``q``-quantile, within relative ``alpha``."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if self.count == 0:
            return 0.0
        rank = min(self.count, max(1, math.ceil(q * self.count)))
        if rank <= self._zero_count:
            return 0.0
        seen = self._zero_count
        for index in sorted(self._buckets):
            seen += self._buckets[index]
            if seen >= rank:
                return self._bucket_value(index)
        return self._bucket_value(max(self._buckets))  # pragma: no cover

    def quantiles(
        self, qs: Iterable[float] = DIGEST_QUANTILES
    ) -> dict[str, float]:
        """``{"p50": ..., "p90": ..., "p99": ...}`` in one pass-friendly
        shape for reports."""
        return {_q_label(q): self.quantile(q) for q in qs}

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    # -- merging -------------------------------------------------------

    def merge(self, other: "QuantileSketch") -> "QuantileSketch":
        """Fold ``other`` into ``self`` (returns ``self``).

        Bucket-wise addition: the merged sketch equals the sketch of
        the concatenated streams exactly, so the ``alpha`` bound is
        preserved.  Sketches with different ``alpha`` resolve values to
        different bucket boundaries and refuse to merge.
        """
        if other.alpha != self.alpha:
            raise ValueError(
                f"cannot merge sketches with alpha {self.alpha} and "
                f"{other.alpha}"
            )
        for index, bucket_count in other._buckets.items():
            self._buckets[index] = self._buckets.get(index, 0) + bucket_count
        self._zero_count += other._zero_count
        self.count += other.count
        self.sum += other.sum
        self.min = min(self.min, other.min)
        self.max = max(self.max, other.max)
        self.collapsed = self.collapsed or other.collapsed
        if len(self._buckets) > self.max_buckets:
            self._collapse()
        return self

    # -- serialisation -------------------------------------------------

    def to_dict(self) -> dict:
        """JSON-ready snapshot (insight reports embed these)."""
        return {
            "alpha": self.alpha,
            "count": self.count,
            "sum": self.sum,
            "min": self.min if self.count else 0.0,
            "max": self.max if self.count else 0.0,
            "zero_count": self._zero_count,
            "collapsed": self.collapsed,
            "buckets": {str(i): c for i, c in sorted(self._buckets.items())},
        }

    @classmethod
    def from_dict(cls, payload: Mapping) -> "QuantileSketch":
        sketch = cls(alpha=float(payload["alpha"]))
        sketch.count = int(payload["count"])
        sketch.sum = float(payload["sum"])
        if sketch.count:
            sketch.min = float(payload["min"])
            sketch.max = float(payload["max"])
        sketch._zero_count = int(payload.get("zero_count", 0))
        sketch.collapsed = bool(payload.get("collapsed", False))
        sketch._buckets = {
            int(index): int(bucket_count)
            for index, bucket_count in payload.get("buckets", {}).items()
        }
        return sketch

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, QuantileSketch):
            return NotImplemented
        return (
            self.alpha == other.alpha
            and self.count == other.count
            and self._zero_count == other._zero_count
            and self._buckets == other._buckets
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"QuantileSketch(alpha={self.alpha}, count={self.count}, "
            f"buckets={len(self._buckets)})"
        )


def _q_label(q: float) -> str:
    """``0.5 -> "p50"``, ``0.99 -> "p99"``, ``0.999 -> "p99.9"``."""
    scaled = q * 100.0
    if scaled == int(scaled):
        return f"p{int(scaled)}"
    return f"p{scaled:g}"
