"""Unit tests for the simulated storage stack (repro.storage)."""

import pytest

from repro.storage import (
    DEFAULT_PAGE_SIZE,
    BufferPool,
    DiskManager,
    IOStats,
    NodePager,
    Page,
    PageNotFoundError,
    PageOverflowError,
    StatsRegistry,
)


class TestPage:
    def test_add_and_iterate(self):
        page = Page(page_id=0)
        page.add("a", 100)
        page.add("b", 200)
        assert list(page) == ["a", "b"]
        assert len(page) == 2
        assert page.record_count == 2

    def test_fits_accounts_for_header(self):
        page = Page(page_id=0, capacity=100)
        assert page.free_space == 100 - 32
        assert page.fits(68)
        assert not page.fits(69)

    def test_overflow_raises(self):
        page = Page(page_id=0, capacity=100)
        page.add("a", 60)
        with pytest.raises(PageOverflowError):
            page.add("b", 60)

    def test_zero_size_record_rejected(self):
        page = Page(page_id=0)
        with pytest.raises(ValueError):
            page.add("a", 0)


class TestDiskManager:
    def test_allocate_assigns_sequential_ids(self):
        disk = DiskManager()
        assert [disk.allocate().page_id for _ in range(3)] == [0, 1, 2]
        assert disk.page_count == 3

    def test_read_counts_raw_reads(self):
        disk = DiskManager()
        page = disk.allocate()
        disk.read(page.page_id)
        disk.read(page.page_id)
        assert disk.raw_reads == 2

    def test_read_missing_raises(self):
        disk = DiskManager()
        with pytest.raises(PageNotFoundError):
            disk.read(42)

    def test_bad_page_size_rejected(self):
        with pytest.raises(ValueError):
            DiskManager(page_size=0)

    def test_page_ids_sorted(self):
        disk = DiskManager()
        for _ in range(4):
            disk.allocate()
        assert disk.page_ids() == [0, 1, 2, 3]


class TestBufferPool:
    def test_miss_then_hit(self):
        disk = DiskManager()
        page = disk.allocate()
        pool = BufferPool(disk, capacity_bytes=DEFAULT_PAGE_SIZE * 4)
        pool.fetch(page.page_id)
        pool.fetch(page.page_id)
        assert pool.stats.physical_reads == 1
        assert pool.stats.logical_reads == 2

    def test_lru_eviction(self):
        disk = DiskManager()
        pages = [disk.allocate().page_id for _ in range(3)]
        pool = BufferPool(disk, capacity_bytes=DEFAULT_PAGE_SIZE * 2)
        pool.fetch(pages[0])
        pool.fetch(pages[1])
        pool.fetch(pages[2])  # evicts pages[0]
        assert not pool.is_resident(pages[0])
        pool.fetch(pages[0])  # miss again
        assert pool.stats.physical_reads == 4

    def test_lru_touch_order(self):
        disk = DiskManager()
        pages = [disk.allocate().page_id for _ in range(3)]
        pool = BufferPool(disk, capacity_bytes=DEFAULT_PAGE_SIZE * 2)
        pool.fetch(pages[0])
        pool.fetch(pages[1])
        pool.fetch(pages[0])  # 0 is now most recent
        pool.fetch(pages[2])  # evicts 1, not 0
        assert pool.is_resident(pages[0])
        assert not pool.is_resident(pages[1])

    def test_too_small_buffer_rejected(self):
        disk = DiskManager()
        with pytest.raises(ValueError):
            BufferPool(disk, capacity_bytes=10)

    def test_clear_forces_cold_misses(self):
        disk = DiskManager()
        page = disk.allocate()
        pool = BufferPool(disk, capacity_bytes=DEFAULT_PAGE_SIZE)
        pool.fetch(page.page_id)
        pool.clear()
        pool.fetch(page.page_id)
        assert pool.stats.physical_reads == 2

    def test_frame_count(self):
        disk = DiskManager()
        pool = BufferPool(disk, capacity_bytes=DEFAULT_PAGE_SIZE * 7)
        assert pool.frame_count == 7


class TestIOStats:
    def test_hit_ratio(self):
        stats = IOStats()
        stats.record_read(hit=True)
        stats.record_read(hit=True)
        stats.record_read(hit=False)
        assert stats.hit_ratio == pytest.approx(2 / 3)

    def test_hit_ratio_empty(self):
        assert IOStats().hit_ratio == 1.0

    def test_reset(self):
        stats = IOStats()
        stats.record_read(hit=False)
        stats.record_write(flushed=True)
        stats.reset()
        assert stats.physical_reads == 0
        assert stats.physical_writes == 0

    def test_snapshot_subtraction(self):
        stats = IOStats()
        stats.record_read(hit=False)
        before = stats.snapshot()
        stats.record_read(hit=False)
        stats.record_read(hit=True)
        delta = stats.snapshot() - before
        assert delta.physical_reads == 1
        assert delta.logical_reads == 2

    def test_registry_totals(self):
        registry = StatsRegistry()
        registry.stats_for("network").record_read(hit=False)
        registry.stats_for("rtree").record_read(hit=False)
        registry.stats_for("rtree").record_read(hit=True)
        assert registry.total_physical_reads() == 2
        registry.reset()
        assert registry.total_physical_reads() == 0


class TestNodePager:
    def test_register_is_idempotent(self):
        pager = NodePager()
        first = pager.register("node-a")
        second = pager.register("node-a")
        assert first == second
        assert pager.page_count() == 1

    def test_touch_charges_pool(self):
        pager = NodePager(buffer_bytes=DEFAULT_PAGE_SIZE * 2)
        pager.touch("a")
        pager.touch("a")
        pager.touch("b")
        assert pager.stats.physical_reads == 2
        assert pager.stats.logical_reads == 3

    def test_forget_removes_mapping(self):
        pager = NodePager()
        pager.register("x")
        pager.forget("x")
        # Re-registering allocates a fresh page.
        assert pager.register("x") == 1


class TestReplacementPolicies:
    def _pool(self, policy, frames=2):
        disk = DiskManager()
        pages = [disk.allocate().page_id for _ in range(5)]
        pool = BufferPool(
            disk, capacity_bytes=DEFAULT_PAGE_SIZE * frames, policy=policy
        )
        return pool, pages

    def test_unknown_policy_rejected(self):
        disk = DiskManager()
        with pytest.raises(ValueError):
            BufferPool(disk, policy="mru")

    def test_fifo_ignores_recency(self):
        pool, pages = self._pool("fifo")
        pool.fetch(pages[0])
        pool.fetch(pages[1])
        pool.fetch(pages[0])  # touch does NOT protect page 0 under FIFO
        pool.fetch(pages[2])  # evicts 0 (oldest arrival)
        assert not pool.is_resident(pages[0])
        assert pool.is_resident(pages[1])

    def test_lru_respects_recency(self):
        pool, pages = self._pool("lru")
        pool.fetch(pages[0])
        pool.fetch(pages[1])
        pool.fetch(pages[0])
        pool.fetch(pages[2])  # evicts 1
        assert pool.is_resident(pages[0])
        assert not pool.is_resident(pages[1])

    def test_clock_second_chance(self):
        pool, pages = self._pool("clock")
        pool.fetch(pages[0])
        pool.fetch(pages[1])
        pool.fetch(pages[0])  # sets 0's reference bit
        pool.fetch(pages[2])  # 0 gets a second chance; 1 evicted
        assert pool.is_resident(pages[0])
        assert not pool.is_resident(pages[1])

    def test_clock_eventually_evicts_referenced(self):
        pool, pages = self._pool("clock")
        pool.fetch(pages[0])
        pool.fetch(pages[1])
        pool.fetch(pages[0])
        pool.fetch(pages[1])  # both referenced
        pool.fetch(pages[2])  # sweep clears both bits, evicts one
        assert pool.resident_count == 2
        assert pool.is_resident(pages[2])

    @pytest.mark.parametrize("policy", ["lru", "fifo", "clock"])
    def test_all_policies_bounded_and_correct(self, policy):
        import random

        rng = random.Random(13)
        disk = DiskManager()
        pages = [disk.allocate().page_id for _ in range(20)]
        pool = BufferPool(
            disk, capacity_bytes=DEFAULT_PAGE_SIZE * 4, policy=policy
        )
        for _ in range(500):
            page = pool.fetch(rng.choice(pages))
            assert page.page_id in pages
            assert pool.resident_count <= 4
        # Sanity: some hits, some misses under a working-set larger
        # than the pool.
        assert 0 < pool.stats.physical_reads < pool.stats.logical_reads

    def test_lru_beats_fifo_on_skewed_access(self):
        """A hot page with cold scans: recency tracking must win."""
        disk = DiskManager()
        pages = [disk.allocate().page_id for _ in range(30)]
        results = {}
        for policy in ("lru", "fifo"):
            pool = BufferPool(
                disk, capacity_bytes=DEFAULT_PAGE_SIZE * 3, policy=policy
            )
            for i in range(600):
                pool.fetch(pages[0])  # hot page every step
                pool.fetch(pages[1 + (i % 29)])  # cold scan
            results[policy] = pool.stats.physical_reads
        assert results["lru"] < results["fifo"]


class TestPageAccessHeat:
    def test_page_accesses_reconcile_with_iostats(self):
        disk = DiskManager()
        pages = [disk.allocate().page_id for _ in range(3)]
        pool = BufferPool(disk, capacity_bytes=DEFAULT_PAGE_SIZE * 4)
        for page_id in (pages[0], pages[0], pages[1], pages[0], pages[2]):
            pool.fetch(page_id)
        accesses = pool.page_accesses()
        assert accesses[pages[0]] == (2, 1)
        assert accesses[pages[1]] == (0, 1)
        assert accesses[pages[2]] == (0, 1)
        assert (
            sum(h + m for h, m in accesses.values())
            == pool.stats.logical_reads
        )
        assert sum(m for _, m in accesses.values()) == pool.stats.physical_reads

    def test_eviction_and_refetch_counts_second_miss(self):
        disk = DiskManager()
        pages = [disk.allocate().page_id for _ in range(3)]
        pool = BufferPool(disk, capacity_bytes=DEFAULT_PAGE_SIZE * 2)
        pool.fetch(pages[0])
        pool.fetch(pages[1])
        pool.fetch(pages[2])  # evicts pages[0]
        pool.fetch(pages[0])  # second physical read of the same page
        assert pool.page_accesses()[pages[0]] == (0, 2)

    def test_reset_stats_clears_heat(self):
        disk = DiskManager()
        page = disk.allocate()
        pool = BufferPool(disk, capacity_bytes=DEFAULT_PAGE_SIZE * 2)
        pool.fetch(page.page_id)
        pool.reset_stats()
        assert pool.page_accesses() == {}
        pool.fetch(page.page_id)  # still resident: a pure hit now
        assert pool.page_accesses()[page.page_id] == (1, 0)

    def test_page_accesses_returns_copy(self):
        disk = DiskManager()
        page = disk.allocate()
        pool = BufferPool(disk, capacity_bytes=DEFAULT_PAGE_SIZE * 2)
        pool.fetch(page.page_id)
        snapshot = pool.page_accesses()
        pool.fetch(page.page_id)
        assert snapshot[page.page_id] == (0, 1)
        assert pool.page_accesses()[page.page_id] == (1, 1)


class TestHeatmapRendering:
    def test_page_heats_sorted_and_ranked(self):
        from repro.storage.heatmap import hottest, page_heats

        heats = page_heats({5: (1, 1), 2: (9, 1), 9: (0, 1)})
        assert [h.page_id for h in heats] == [2, 5, 9]
        assert [h.page_id for h in hottest(heats, top=2)] == [2, 5]

    def test_bin_heats_covers_sparse_range(self):
        from repro.storage.heatmap import bin_heats, page_heats

        heats = page_heats({0: (2, 1), 100: (0, 1)})
        rows = bin_heats(heats, bins=4)
        assert len(rows) == 4
        assert sum(accesses for _, _, accesses, _ in rows) == 4
        assert rows[0][2] == 3 and rows[-1][2] == 1

    def test_render_strip_scales_intensity(self):
        from repro.storage.heatmap import page_heats, render_strip

        strip = render_strip(
            page_heats({0: (99, 1), 1: (0, 1), 2: (0, 0)}), width=3
        )
        assert len(strip) == 3
        assert strip[0] == "@"  # the hot page saturates the ramp
        assert render_strip([], width=8) == "(no page accesses)"

    def test_heat_dict_round_trips_counts(self):
        from repro.storage.heatmap import heat_dict

        data = heat_dict({"network": {3: (4, 2)}})
        assert data["network"]["pages_touched"] == 1
        assert data["network"]["accesses"] == 6
        assert data["network"]["physical_reads"] == 2
        assert data["network"]["pages"][0] == {
            "page_id": 3, "hits": 4, "misses": 2,
        }
